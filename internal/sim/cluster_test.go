package sim

import (
	"testing"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/router"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// pamLike maps each batch task (in arrival order) to the free-slot machine
// maximizing its chance of success — the shape of the paper's PAM, local to
// this package so cluster tests exercise the calculus without importing
// internal/mapping (which would cycle).
type pamLike struct{}

func (pamLike) Name() string { return "testPAM" }

func (pamLike) Map(ev *MappingEvent) {
	for len(ev.Batch()) > 0 {
		ts := ev.Batch()[0]
		var best *Machine
		bestP := -1.0
		for _, m := range ev.Machines() {
			if ev.FreeSlots(m) <= 0 {
				continue
			}
			if p := ev.SuccessProbability(ts, m); p > bestP {
				best, bestP = m, p
			}
		}
		if best == nil {
			return
		}
		ev.Assign(ts, best)
	}
}

// clusterTestSystem returns the cached video matrix and a small
// oversubscribed trace that exercises every decision path.
func clusterTestSystem(t testing.TB, tasks int, seed int64) (*pet.Matrix, *workload.Trace) {
	t.Helper()
	m, err := pet.CachedMatrix("video")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workload.Config{TotalTasks: 30000, Window: workload.StandardWindow, GammaSlack: workload.DefaultGammaSlack}
	return m, workload.Generate(m, cfg.Scaled(float64(tasks)/30000), seed)
}

// pamHeuristic is a ShardBuilder supplying the test mapper and the paper's
// tuned dropping heuristic fresh per shard.
func pamHeuristic(t testing.TB) ShardBuilder {
	t.Helper()
	return func(int) (Mapper, core.Policy, error) {
		return pamLike{}, core.NewHeuristic(), nil
	}
}

func runCluster(t testing.TB, m *pet.Matrix, tr *workload.Trace, shards int, pol router.Policy, cfg Config) ([]int, *Result) {
	t.Helper()
	cl, err := NewCluster(m, shards, pol, pamHeuristic(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	routes := make([]int, len(tr.Tasks))
	for i := range tr.Tasks {
		routes[i], _ = cl.Feed(&tr.Tasks[i])
	}
	return routes, cl.Drain()
}

func TestPartitionMachinesCoversDisjointly(t *testing.T) {
	m, _ := clusterTestSystem(t, 10, 1)
	all := m.Machines()
	for _, n := range []int{1, 2, 3, len(all)} {
		parts, global := PartitionMachines(m, n)
		seen := make(map[int]bool)
		for s := range parts {
			if len(parts[s]) != len(global[s]) {
				t.Fatalf("n=%d shard %d: %d specs vs %d global indexes", n, s, len(parts[s]), len(global[s]))
			}
			for l, spec := range parts[s] {
				if spec.Index != l {
					t.Fatalf("n=%d shard %d local %d has index %d", n, s, l, spec.Index)
				}
				g := global[s][l]
				if seen[g] {
					t.Fatalf("n=%d machine %d dealt twice", n, g)
				}
				seen[g] = true
				want := all[g]
				if spec.Name != want.Name || spec.Type != want.Type || spec.PriceHour != want.PriceHour {
					t.Fatalf("n=%d shard %d local %d: spec %+v does not match global %+v", n, s, l, spec, want)
				}
			}
		}
		if len(seen) != len(all) {
			t.Fatalf("n=%d covered %d of %d machines", n, len(seen), len(all))
		}
		// Balance: shard sizes differ by at most one.
		lo, hi := len(parts[0]), len(parts[0])
		for _, p := range parts {
			lo, hi = min(lo, len(p)), max(hi, len(p))
		}
		if hi-lo > 1 {
			t.Fatalf("n=%d unbalanced partition: min %d, max %d", n, lo, hi)
		}
	}
}

// TestOneShardClusterMatchesEngine is the determinism guard of the
// sharded architecture: a 1-shard Cluster must be bit-identical — same
// Result, same per-machine assignment of every task — to the classic
// trace-driven Engine on the same (matrix, trace, mapper, dropper,
// config).
func TestOneShardClusterMatchesEngine(t *testing.T) {
	m, tr := clusterTestSystem(t, 500, 3)
	cfg := Config{QueueCap: 6, BoundaryExclusion: 50}

	cl, err := NewCluster(m, 1, nil, pamHeuristic(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	states := make([]*TaskState, len(tr.Tasks))
	for i := range tr.Tasks {
		s, ts := cl.Feed(&tr.Tasks[i])
		if s != 0 {
			t.Fatalf("1-shard cluster routed task %d to shard %d", i, s)
		}
		states[i] = ts
	}
	got := cl.Drain()

	want := New(m, tr, pamLike{}, core.NewHeuristic(), cfg).Run()
	if *got != *want {
		t.Fatalf("1-shard cluster Result = %+v\nwant (engine)        %+v", got, want)
	}
	// Per-task states match the engine's too, machine for machine.
	ref := New(m, tr, pamLike{}, core.NewHeuristic(), cfg)
	ref.Run()
	for i, rs := range ref.TaskStates() {
		cs := states[i]
		if cs.Status != rs.Status || cs.Machine != rs.Machine || cs.Start != rs.Start || cs.Finish != rs.Finish {
			t.Fatalf("task %d diverged: cluster %+v vs engine %+v", i, *cs, rs)
		}
	}
}

// TestClusterReproducible: for a fixed (trace, shard count, routing
// policy, seeds), two cluster runs route identically and land on the
// identical merged Result — the K-shard determinism contract.
func TestClusterReproducible(t *testing.T) {
	m, tr := clusterTestSystem(t, 500, 5)
	cfg := Config{QueueCap: 6}
	for _, spec := range []string{"rr", "mass", "p2c:seed=11"} {
		polA, err := router.FromSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		polB, _ := router.FromSpec(spec)
		routesA, resA := runCluster(t, m, tr, 4, polA, cfg)
		routesB, resB := runCluster(t, m, tr, 4, polB, cfg)
		for i := range routesA {
			if routesA[i] != routesB[i] {
				t.Fatalf("%s: task %d routed to %d then %d", spec, i, routesA[i], routesB[i])
			}
		}
		if *resA != *resB {
			t.Fatalf("%s: results diverged:\n%+v\n%+v", spec, resA, resB)
		}
		if err := resA.Validate(); err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if resA.Total != tr.Len() {
			t.Fatalf("%s: merged total %d, want %d", spec, resA.Total, tr.Len())
		}
		// Every shard must have seen work on an oversubscribed trace.
		seen := make(map[int]int)
		for _, s := range routesA {
			seen[s]++
		}
		if len(seen) != 4 {
			t.Fatalf("%s: only %d of 4 shards used: %v", spec, len(seen), seen)
		}
	}
}

// TestClusterRobustnessTracksOffline: sharding changes the mapper's view
// (shard-local candidates), so robustness shifts, but a 4-shard cluster
// on an oversubscribed trace must stay in the same regime as the
// unsharded engine — this is the offline version of the CI shard-matrix
// tolerance check.
func TestClusterRobustnessTracksOffline(t *testing.T) {
	m, tr := clusterTestSystem(t, 1000, 7)
	cfg := Config{QueueCap: 6}
	offline := New(m, tr, pamLike{}, core.NewHeuristic(), cfg).Run()

	pol, _ := router.FromSpec("p2c:seed=1")
	_, sharded := runCluster(t, m, tr, 4, pol, cfg)
	diff := sharded.RobustnessPct - offline.RobustnessPct
	if diff < -20 || diff > 20 {
		t.Fatalf("4-shard robustness %.2f%% vs offline %.2f%%: drifted out of regime", sharded.RobustnessPct, offline.RobustnessPct)
	}
}

func TestMergeResults(t *testing.T) {
	a := &Result{Total: 10, Measured: 8, OnTime: 6, Late: 2, DroppedReactive: 1, DroppedProactive: 1,
		MOnTime: 5, MLate: 1, MDroppedReactive: 1, MDroppedProactive: 1,
		RobustnessPct: 62.5, UtilityPct: 70, TotalCostUSD: 1.0, Makespan: 100, BusyTicks: 50}
	b := &Result{Total: 6, Measured: 4, OnTime: 2, Late: 2, DroppedReactive: 1, DroppedProactive: 1,
		MOnTime: 1, MLate: 1, MDroppedReactive: 1, MDroppedProactive: 1,
		RobustnessPct: 25, UtilityPct: 40, TotalCostUSD: 0.5, Makespan: 200, BusyTicks: 30}

	if got := MergeResults([]*Result{a}, 8); got != a {
		t.Fatal("single-part merge must be the identity")
	}
	got := MergeResults([]*Result{a, b}, 4)
	if got.Total != 16 || got.Measured != 12 || got.MOnTime != 6 || got.Makespan != 200 || got.BusyTicks != 80 {
		t.Fatalf("merged counts wrong: %+v", got)
	}
	if want := 100 * 6.0 / 12.0; got.RobustnessPct != want {
		t.Fatalf("merged robustness %v, want %v", got.RobustnessPct, want)
	}
	if want := (70*8.0 + 40*4.0) / 12.0; got.UtilityPct != want {
		t.Fatalf("merged utility %v, want %v", got.UtilityPct, want)
	}
	if want := 1.5 / got.RobustnessPct; got.CostPerRobustness != want {
		t.Fatalf("merged cost/robustness %v, want %v", got.CostPerRobustness, want)
	}
	if want := 100 * 80.0 / (200.0 * 4.0); got.UtilizationPct != want {
		t.Fatalf("merged utilization %v, want %v", got.UtilizationPct, want)
	}
}

// TestShardViewPublishing: the engine's router-view hooks track the live
// census, and admissions fold real success probabilities into the class
// EWMA.
func TestShardViewPublishing(t *testing.T) {
	m, tr := clusterTestSystem(t, 200, 2)
	pol, _ := router.FromSpec("mass")
	cl, err := NewCluster(m, 2, pol, pamHeuristic(t), Config{QueueCap: 6})
	if err != nil {
		t.Fatal(err)
	}
	sawDegraded := false
	for i := range tr.Tasks {
		s, _ := cl.Feed(&tr.Tasks[i])
		eng, v := cl.Shards()[s], cl.View(s)
		live := eng.LiveCounts()
		if got, want := v.QueueMass(), int64(live.Batch+live.Queued+live.Running); got != want {
			t.Fatalf("task %d shard %d: view mass %d, live %d", i, s, got, want)
		}
		for class := 0; class < m.NumTaskTypes(); class++ {
			if r := v.ClassRobustness(class); r < 0 || r > 1 {
				t.Fatalf("robustness estimate out of [0,1]: %v", r)
			} else if r < 1 {
				sawDegraded = true
			}
		}
	}
	if !sawDegraded {
		t.Fatal("oversubscribed run never moved a robustness estimate below 1.0")
	}
	res := cl.Drain()
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

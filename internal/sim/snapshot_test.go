package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/stats"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// randomOpenTasks synthesizes a feedable task sequence with bursts, ties
// and a spread of slacks so snapshots land in interesting states (queues
// full, batch non-empty, drops pending).
func randomOpenTasks(n int, seed int64) []workload.Task {
	rng := stats.NewRNG(seed)
	tasks := make([]workload.Task, n)
	clock := pmf.Tick(0)
	for i := range tasks {
		if rng.Float64() < 0.6 {
			clock += pmf.Tick(rng.Intn(15))
		}
		exec := pmf.Tick(3 + rng.Intn(20))
		tasks[i] = workload.Task{
			ID:         i,
			Type:       0,
			Arrival:    clock,
			Deadline:   clock + pmf.Tick(5+rng.Intn(60)),
			ExecByType: []pmf.Tick{exec},
		}
	}
	return tasks
}

// snapshotEngines builds a live engine and a same-config fresh replica.
func snapshotEngines(t *testing.T, cfg Config) (live, replica *Engine) {
	t.Helper()
	m := testMatrix(t, 3, pmf.Delta(10))
	return NewOpen(m, fifoMapper{}, nil, cfg), NewOpen(m, fifoMapper{}, nil, cfg)
}

// TestSnapshotRestoreEquivalence is the replay property test: for several
// cut points k, restore(snapshot after k feeds) + feeding the remaining
// tasks must reproduce the live engine exactly — per-task decisions along
// the way, the full state snapshot at the end, and the drained Result.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	cfg := cfgNoExclusion()
	failCfg := cfg
	failCfg.Failures = FailureConfig{MTBF: 40, MeanRepair: 15, Seed: 7}

	for name, c := range map[string]Config{"plain": cfg, "failures": failCfg} {
		t.Run(name, func(t *testing.T) {
			tasks := randomOpenTasks(120, 11)
			for _, cut := range []int{0, 1, 17, 60, 119, 120} {
				live, replica := snapshotEngines(t, c)
				for i := 0; i < cut; i++ {
					live.Feed(&tasks[i])
				}
				snap := live.Snapshot()

				// The snapshot must survive its serialization format.
				blob, err := json.Marshal(snap)
				if err != nil {
					t.Fatal(err)
				}
				var decoded EngineSnapshot
				if err := json.Unmarshal(blob, &decoded); err != nil {
					t.Fatal(err)
				}
				if err := replica.RestoreSnapshot(&decoded); err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}

				for i := cut; i < len(tasks); i++ {
					a := live.Feed(&tasks[i])
					b := replica.Feed(&tasks[i])
					if a.Status != b.Status || a.Machine != b.Machine {
						t.Fatalf("cut %d: task %d diverged: live %v/m%d, replica %v/m%d",
							cut, i, a.Status, a.Machine, b.Status, b.Machine)
					}
				}
				if got, want := replica.Snapshot(), live.Snapshot(); !reflect.DeepEqual(got, want) {
					t.Fatalf("cut %d: final snapshots diverged", cut)
				}
				if got, want := replica.LiveCounts(), live.LiveCounts(); got != want {
					t.Fatalf("cut %d: live counts diverged: %+v vs %+v", cut, got, want)
				}
				got, want := replica.Drain(), live.Drain()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("cut %d: drained results diverged:\n got %+v\nwant %+v", cut, got, want)
				}
			}
		})
	}
}

// TestSnapshotMidOutageRestores cuts while a machine is down: the restored
// replica must resume the outage (hold the queue, fire the repair) exactly.
func TestSnapshotMidOutageRestores(t *testing.T) {
	cfg := cfgNoExclusion()
	cfg.Failures = FailureConfig{MTBF: 25, MeanRepair: 30, Seed: 3}
	tasks := randomOpenTasks(200, 5)

	live, replica := snapshotEngines(t, cfg)
	cut := -1
	for i := range tasks {
		live.Feed(&tasks[i])
		down := false
		for j := range live.Machines() {
			if live.failed(j) {
				down = true
			}
		}
		if down && i < len(tasks)-10 {
			cut = i + 1
			break
		}
	}
	if cut < 0 {
		t.Skip("no outage observed in the feed window; tune MTBF")
	}
	if err := replica.RestoreSnapshot(live.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for i := cut; i < len(tasks); i++ {
		live.Feed(&tasks[i])
		replica.Feed(&tasks[i])
	}
	if got, want := replica.Drain(), live.Drain(); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-outage drains diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestRestoreSnapshotValidation(t *testing.T) {
	m := testMatrix(t, 2, pmf.Delta(10))
	cfg := cfgNoExclusion()

	fresh := func() *Engine { return NewOpen(m, fifoMapper{}, nil, cfg) }

	// Non-fresh target.
	e := fresh()
	tk := workload.Task{ID: 0, Type: 0, Arrival: 0, Deadline: 50, ExecByType: []pmf.Tick{10}}
	e.Feed(&tk)
	if err := e.RestoreSnapshot(fresh().Snapshot()); err == nil {
		t.Fatal("restore into a fed engine accepted")
	}

	// Machine-count mismatch.
	big := NewOpen(testMatrix(t, 3, pmf.Delta(10)), fifoMapper{}, nil, cfg)
	if err := fresh().RestoreSnapshot(big.Snapshot()); err == nil {
		t.Fatal("machine-count mismatch accepted")
	}

	// Failure-config mismatch.
	fcfg := cfg
	fcfg.Failures = FailureConfig{MTBF: 100, MeanRepair: 10, Seed: 1}
	withFail := NewOpen(m, fifoMapper{}, nil, fcfg)
	if err := fresh().RestoreSnapshot(withFail.Snapshot()); err == nil {
		t.Fatal("failure-config mismatch accepted")
	}

	// Corrupt task index.
	s := fresh().Snapshot()
	s.Batch = []int{5}
	if err := fresh().RestoreSnapshot(s); err == nil {
		t.Fatal("out-of-range batch index accepted")
	}

	// Trace-driven engines have no snapshots.
	tr := makeTrace([]pmf.Tick{0}, []pmf.Tick{50}, []pmf.Tick{10})
	closed := New(m, tr, fifoMapper{}, nil, cfg)
	if err := closed.RestoreSnapshot(fresh().Snapshot()); err == nil {
		t.Fatal("restore into trace-driven engine accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Snapshot on trace-driven engine did not panic")
			}
		}()
		closed.Snapshot()
	}()
}

// TestJournalHookSeesTerminalEvents checks the WAL hook fires exactly once
// per terminal transition, in event order, with the engine clock.
func TestJournalHookSeesTerminalEvents(t *testing.T) {
	m := testMatrix(t, 1, pmf.Delta(10))
	e := NewOpen(m, fifoMapper{}, nil, cfgNoExclusion())
	type ev struct {
		id     int
		status Status
		tick   pmf.Tick
	}
	var got []ev
	e.SetJournal(func(ts *TaskState, now pmf.Tick) {
		got = append(got, ev{ts.Task.ID, ts.Status, now})
	})
	// Task 0 runs [0,10) and completes on time; task 1's deadline passes
	// while queued → reactive drop at the completion event.
	t0 := workload.Task{ID: 0, Type: 0, Arrival: 0, Deadline: 50, ExecByType: []pmf.Tick{10}}
	t1 := workload.Task{ID: 1, Type: 0, Arrival: 1, Deadline: 8, ExecByType: []pmf.Tick{10}}
	e.Feed(&t0)
	e.Feed(&t1)
	e.Drain()
	// The completion transition fires inside handleCompletion before its
	// mapping pipeline reactively drops the expired task.
	want := []ev{
		{0, StatusCompletedOnTime, 10},
		{1, StatusDroppedReactive, 10},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("journal hook events = %+v, want %+v", got, want)
	}
}

package sim

import (
	"math/rand"
	"testing"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// TestEngineInvariantSweep drives the engine through a randomized
// configuration space — profiles, queue bounds, droppers, grace windows,
// failure intensities, strict Fig. 4 semantics — and checks the invariants
// that must hold regardless:
//
//   - every task reaches exactly one terminal state (conservation);
//   - on-time tasks finished strictly before their deadline, late ones at
//     or after it, and both started strictly before deadline+grace;
//   - no task is marked proactively dropped unless a proactive policy ran;
//   - executed tasks carry a valid machine index, never-started ones −1;
//   - identical configurations replay identically.
func TestEngineInvariantSweep(t *testing.T) {
	profiles := []pet.Profile{pet.VideoProfile(), pet.HomogeneousProfile(), pet.SPECProfile(3)}
	matrices := make([]*pet.Matrix, len(profiles))
	for i, p := range profiles {
		matrices[i] = pet.Build(p, int64(i+1), pet.BuildOptions{SamplesPerCell: 120, BinsPerPMF: 12})
	}
	droppers := []core.Policy{
		nil,
		core.ReactiveOnly{},
		core.NewHeuristic(),
		core.Heuristic{Beta: 1.5, Eta: 1},
		core.Optimal{},
		core.NewThreshold(),
		core.NewApproxHeuristic(80),
	}

	r := rand.New(rand.NewSource(99))
	const cases = 40
	for i := 0; i < cases; i++ {
		m := matrices[r.Intn(len(matrices))]
		dropper := droppers[r.Intn(len(droppers))]
		cfg := DefaultConfig()
		cfg.QueueCap = 1 + r.Intn(8)
		cfg.BoundaryExclusion = r.Intn(20)
		cfg.DropOnArrival = r.Intn(2) == 0
		if r.Intn(3) == 0 {
			cfg.ReactiveGrace = pmf.Tick(r.Intn(200))
		}
		if r.Intn(3) == 0 {
			cfg.Failures = FailureConfig{
				MTBF:       pmf.Tick(200 + r.Intn(2000)),
				MeanRepair: pmf.Tick(20 + r.Intn(200)),
				Seed:       int64(i),
			}
		}
		wl := workload.Config{
			TotalTasks: 150 + r.Intn(250),
			Window:     pmf.Tick(800 + r.Intn(2500)),
			GammaSlack: 0.5 + 3*r.Float64(),
		}
		tr := workload.Generate(m, wl, int64(i))

		e := New(m, tr, fifoMapper{}, dropper, cfg)
		res := e.Run()
		if err := res.Validate(); err != nil {
			t.Fatalf("case %d (%+v): %v", i, cfg, err)
		}

		proactivePolicy := dropper != nil
		if _, isReactive := dropper.(core.ReactiveOnly); isReactive || dropper == nil {
			proactivePolicy = false
		}
		for _, ts := range e.TaskStates() {
			dl := ts.Task.Deadline
			switch ts.Status {
			case StatusCompletedOnTime:
				if ts.Finish >= dl {
					t.Fatalf("case %d: on-time task %d finished at %d, deadline %d", i, ts.Task.ID, ts.Finish, dl)
				}
			case StatusCompletedLate:
				if ts.Finish < dl {
					t.Fatalf("case %d: late task %d finished at %d before deadline %d", i, ts.Task.ID, ts.Finish, dl)
				}
			case StatusDroppedProactive:
				if !proactivePolicy {
					t.Fatalf("case %d: proactive drop without a proactive policy", i)
				}
			case StatusDroppedReactive, StatusFailed:
				// no timing claim
			default:
				t.Fatalf("case %d: task %d non-terminal status %v", i, ts.Task.ID, ts.Status)
			}
			executed := ts.Status == StatusCompletedOnTime || ts.Status == StatusCompletedLate || ts.Status == StatusFailed
			if executed {
				if ts.Machine < 0 || ts.Machine >= len(m.Machines()) {
					t.Fatalf("case %d: executed task %d has machine %d", i, ts.Task.ID, ts.Machine)
				}
				if ts.Start >= dl+cfg.ReactiveGrace {
					t.Fatalf("case %d: task %d started at %d, cutoff %d", i, ts.Task.ID, ts.Start, dl+cfg.ReactiveGrace)
				}
			}
		}

		// Replay determinism.
		res2 := New(m, tr, fifoMapper{}, dropper, cfg).Run()
		if *res != *res2 {
			t.Fatalf("case %d not deterministic:\n%+v\n%+v", i, res, res2)
		}
	}
}

// TestDropOnArrivalDiffersOnlyInProactivity verifies the strict Fig. 4
// mode is a pure superset of dropping opportunities: it may change which
// tasks get dropped, but conservation and on-time semantics are identical,
// and with a reactive-only dropper the mode is a no-op.
func TestDropOnArrivalDiffersOnlyInProactivity(t *testing.T) {
	m := pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 120, BinsPerPMF: 12})
	tr := workload.Generate(m, workload.Config{TotalTasks: 400, Window: 2500, GammaSlack: 2}, 77)

	base := DefaultConfig()
	strict := DefaultConfig()
	strict.DropOnArrival = true

	a := New(m, tr, fifoMapper{}, core.ReactiveOnly{}, base).Run()
	b := New(m, tr, fifoMapper{}, core.ReactiveOnly{}, strict).Run()
	if *a != *b {
		t.Fatalf("DropOnArrival changed a reactive-only run:\n%+v\n%+v", a, b)
	}

	c := New(m, tr, fifoMapper{}, core.NewHeuristic(), strict).Run()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

package sim

import (
	"context"
	"fmt"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// NewOpen builds an engine with no pre-loaded trace: arrivals are fed one
// at a time through Feed, and the run ends with Drain. An open engine is
// the core of the online admission service (internal/service) — it runs
// the exact event pipeline of the offline simulator (reactive drops,
// proactive dropping policy, mapping heuristic, machine execution), so for
// the same (PET matrix, task sequence, configuration) the decisions and
// the final Result are identical to a trace-driven Run.
func NewOpen(m *pet.Matrix, mapper Mapper, dropper core.Policy, cfg Config) *Engine {
	e := newEngine(m, mapper, dropper, cfg)
	e.open = true
	// Trace-driven engines seed failure processes at the top of RunContext;
	// an open engine may process failure events from the first Feed.
	e.initFailures()
	return e
}

// Feed advances the engine to t.Arrival (processing every completion,
// failure and repair event due before it, exactly as the trace-driven
// event loop would), injects the task into the batch, runs the mapping
// pipeline, and returns the task's state. Inspecting the returned state
// immediately yields the admission decision:
//
//   - StatusQueued / StatusRunning: mapped to machine state.Machine;
//   - StatusBatch: deferred — every queue slot is full, the task waits
//     unmapped and will be considered again at future events;
//   - StatusDroppedReactive: dropped — its deadline (plus grace) already
//     passed at arrival.
//
// Arrivals must be fed in non-decreasing time order; a task whose Arrival
// lies before the engine clock is treated as arriving now (the clock never
// moves backwards). Feed panics on a trace-driven engine.
func (e *Engine) Feed(t *workload.Task) *TaskState {
	if !e.open {
		panic("sim: Feed on a trace-driven engine; use NewOpen")
	}
	if t == nil {
		panic("sim: Feed(nil)")
	}
	if t.Arrival > e.clock {
		e.AdvanceTo(t.Arrival)
	}
	ts := &TaskState{Task: t, Machine: -1}
	e.tasks = append(e.tasks, ts)
	// Keep nextArrival == len(tasks) so the drain loop (RunContext) sees no
	// pending trace arrivals.
	e.nextArrival = len(e.tasks)
	e.arrive(ts)
	e.batch = append(e.batch, ts)
	e.mappingEvent(false)
	return ts
}

// AdvanceTo processes every completion, failure and repair event due up to
// now and moves the clock there. Event ordering matches the trace-driven
// loop: completions at t ≤ now fire (a completion ties ahead of an arrival
// at the same tick), failure/repair events fire only strictly before now
// (an arrival ties ahead of a failure), and a completion ties ahead of a
// failure at the same tick.
func (e *Engine) AdvanceTo(now pmf.Tick) {
	if !e.open {
		panic("sim: AdvanceTo on a trace-driven engine")
	}
	if now < e.clock {
		panic(fmt.Sprintf("sim: AdvanceTo moving backwards: %d -> %d", e.clock, now))
	}
	for {
		cm, ct := e.nextCompletion()
		fm, ft, isRepair := -1, noCompletion, false
		if e.failures != nil {
			fm, ft, isRepair = e.nextFailureEvent()
		}
		switch {
		case ct != noCompletion && ct <= now && (ft == noCompletion || ct <= ft):
			e.advance(ct)
			e.handleCompletion(e.machines[cm])
		case ft != noCompletion && ft < now:
			e.advance(ft)
			if isRepair {
				e.handleRepair(fm)
			} else {
				e.handleFailure(fm)
			}
		default:
			e.advance(now)
			return
		}
	}
}

// Drain runs the remaining events of an open engine to completion (all
// queued work executed or dropped, consistent with the trace-driven drain)
// and returns the Result. The engine is not reusable afterwards.
func (e *Engine) Drain() *Result {
	if !e.open {
		panic("sim: Drain on a trace-driven engine; use Run")
	}
	// With no pending arrivals, RunContext is exactly the drain loop:
	// completions and failure events until the system is idle, then finish.
	res, err := e.RunContext(context.Background())
	if err != nil {
		// Unreachable: the background context is never cancelled.
		panic(err)
	}
	return res
}

// Live is a point-in-time census of every task the engine has seen,
// grouped by lifecycle state — the online service's queue-depth and
// robustness gauges read it between events.
type Live struct {
	Arrived          int `json:"arrived"`
	Batch            int `json:"batch"`
	Queued           int `json:"queued"`
	Running          int `json:"running"`
	OnTime           int `json:"on_time"`
	Late             int `json:"late"`
	DroppedReactive  int `json:"dropped_reactive"`
	DroppedProactive int `json:"dropped_proactive"`
	Failed           int `json:"failed"`
}

// add shifts the census bucket of status s by d.
func (l *Live) add(s Status, d int) {
	switch s {
	case StatusBatch:
		l.Batch += d
	case StatusQueued:
		l.Queued += d
	case StatusRunning:
		l.Running += d
	case StatusCompletedOnTime:
		l.OnTime += d
	case StatusCompletedLate:
		l.Late += d
	case StatusDroppedReactive:
		l.DroppedReactive += d
	case StatusDroppedProactive:
		l.DroppedProactive += d
	case StatusFailed:
		l.Failed += d
	}
}

// LiveCounts returns the census of arrived tasks. It is O(1): the engine
// maintains the counts incrementally at every status transition, so the
// admission service can expose queue gauges on each scrape without
// walking its full decision history.
func (e *Engine) LiveCounts() Live { return e.live }

// recountLive recomputes the census from scratch; tests cross-check it
// against the incremental counts.
func (e *Engine) recountLive() Live {
	lc := Live{Arrived: e.nextArrival}
	for _, ts := range e.tasks[:e.nextArrival] {
		lc.add(ts.Status, 1)
	}
	return lc
}

// QueueDepths returns the current queue length (including the running
// task) of every machine, indexed by machine.
func (e *Engine) QueueDepths() []int {
	out := make([]int, len(e.machines))
	for i, m := range e.machines {
		out[i] = len(m.queue)
	}
	return out
}

// Machines exposes the machine list (read-only) for callers labelling
// per-machine gauges.
func (e *Engine) Machines() []*Machine { return e.machines }

package sim

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/pmf"
)

// Result summarizes one simulated trial. The JSON tags serialize runs for
// downstream tooling (dashboards, notebook analysis, regression tracking).
type Result struct {
	// Total is the number of tasks in the trace; Measured excludes the
	// first and last BoundaryExclusion tasks (§V-A).
	Total    int `json:"total"`
	Measured int `json:"measured"`

	// Whole-trace terminal counts. Failed counts tasks killed by injected
	// machine failures (zero unless Config.Failures is enabled).
	OnTime           int `json:"on_time"`
	Late             int `json:"late"`
	DroppedReactive  int `json:"dropped_reactive"`
	DroppedProactive int `json:"dropped_proactive"`
	Failed           int `json:"failed"`

	// Measured-window terminal counts.
	MOnTime           int `json:"m_on_time"`
	MLate             int `json:"m_late"`
	MDroppedReactive  int `json:"m_dropped_reactive"`
	MDroppedProactive int `json:"m_dropped_proactive"`
	MFailed           int `json:"m_failed"`

	// RobustnessPct is the paper's robustness metric: percentage of
	// measured tasks completed on time.
	RobustnessPct float64 `json:"robustness_pct"`
	// UtilityPct is the approximate-computing value metric: mean realized
	// utility of measured tasks (%) with grace = Config.ReactiveGrace.
	// With zero grace it equals RobustnessPct.
	UtilityPct float64 `json:"utility_pct"`

	// TotalCostUSD is the execution cost across machines (busy time ×
	// hourly price). CostPerRobustness is Fig. 9's normalized cost:
	// TotalCostUSD divided by RobustnessPct.
	TotalCostUSD      float64 `json:"total_cost_usd"`
	CostPerRobustness float64 `json:"cost_per_robustness"`

	// Makespan is the clock at drain time; BusyTicks the summed machine
	// busy time; UtilizationPct the busy share of machine·time capacity.
	Makespan       pmf.Tick `json:"makespan"`
	BusyTicks      pmf.Tick `json:"busy_ticks"`
	UtilizationPct float64  `json:"utilization_pct"`
}

// DropReactiveShare returns the fraction of all measured drops that were
// reactive — the §V-F diagnostic (≈7% under the proactive heuristic).
func (r *Result) DropReactiveShare() float64 {
	d := r.MDroppedReactive + r.MDroppedProactive
	if d == 0 {
		return 0
	}
	return float64(r.MDroppedReactive) / float64(d)
}

// Validate checks conservation: every task reached exactly one terminal
// state.
func (r *Result) Validate() error {
	sum := r.OnTime + r.Late + r.DroppedReactive + r.DroppedProactive + r.Failed
	if sum != r.Total {
		return fmt.Errorf("sim: task conservation violated: %d terminal vs %d total", sum, r.Total)
	}
	msum := r.MOnTime + r.MLate + r.MDroppedReactive + r.MDroppedProactive + r.MFailed
	if msum != r.Measured {
		return fmt.Errorf("sim: measured conservation violated: %d terminal vs %d measured", msum, r.Measured)
	}
	return nil
}

// buildResult derives the Result after drain.
func (e *Engine) buildResult() *Result {
	r := &Result{Total: len(e.tasks), Makespan: e.clock}
	lo := e.cfg.BoundaryExclusion
	hi := len(e.tasks) - e.cfg.BoundaryExclusion
	if hi < lo {
		// Degenerate small traces: measure everything rather than nothing.
		lo, hi = 0, len(e.tasks)
	}
	for i, ts := range e.tasks {
		measured := i >= lo && i < hi
		if measured {
			r.Measured++
		}
		switch ts.Status {
		case StatusCompletedOnTime:
			r.OnTime++
			if measured {
				r.MOnTime++
			}
		case StatusCompletedLate:
			r.Late++
			if measured {
				r.MLate++
			}
		case StatusDroppedReactive:
			r.DroppedReactive++
			if measured {
				r.MDroppedReactive++
			}
		case StatusDroppedProactive:
			r.DroppedProactive++
			if measured {
				r.MDroppedProactive++
			}
		case StatusFailed:
			r.Failed++
			if measured {
				r.MFailed++
			}
		default:
			panic(fmt.Sprintf("sim: task %d drained in non-terminal status %v", ts.Task.ID, ts.Status))
		}
	}
	if r.Measured > 0 {
		r.RobustnessPct = 100 * float64(r.MOnTime) / float64(r.Measured)
		r.UtilityPct = utilityScore(e.tasks, e.cfg.ReactiveGrace, e.cfg.BoundaryExclusion)
	}
	var busy pmf.Tick
	var cost float64
	for _, m := range e.machines {
		busy += m.busy
		cost += float64(m.busy) / 3.6e6 * m.Spec.PriceHour
	}
	r.BusyTicks = busy
	r.TotalCostUSD = cost
	if r.RobustnessPct > 0 {
		r.CostPerRobustness = cost / r.RobustnessPct
	}
	if e.clock > 0 && len(e.machines) > 0 {
		r.UtilizationPct = 100 * float64(busy) / (float64(e.clock) * float64(len(e.machines)))
	}
	if err := r.Validate(); err != nil {
		panic(err)
	}
	return r
}

// MergeResults folds per-shard trial Results into one cluster Result.
// Counts and costs sum; the makespan is the slowest shard's clock; rate
// metrics are recomputed from the merged counts (robustness from merged
// measured counts, utility as the measured-task-weighted mean, utilization
// against totalMachines across the whole cluster). With a single part the
// result is returned unchanged — the identity that keeps a 1-shard
// cluster bit-identical to the unsharded engine.
func MergeResults(parts []*Result, totalMachines int) *Result {
	if len(parts) == 0 {
		panic("sim: MergeResults of no parts")
	}
	if len(parts) == 1 {
		return parts[0]
	}
	r := &Result{}
	var utilityWeighted float64
	for _, p := range parts {
		r.Total += p.Total
		r.Measured += p.Measured
		r.OnTime += p.OnTime
		r.Late += p.Late
		r.DroppedReactive += p.DroppedReactive
		r.DroppedProactive += p.DroppedProactive
		r.Failed += p.Failed
		r.MOnTime += p.MOnTime
		r.MLate += p.MLate
		r.MDroppedReactive += p.MDroppedReactive
		r.MDroppedProactive += p.MDroppedProactive
		r.MFailed += p.MFailed
		r.TotalCostUSD += p.TotalCostUSD
		r.BusyTicks += p.BusyTicks
		if p.Makespan > r.Makespan {
			r.Makespan = p.Makespan
		}
		utilityWeighted += p.UtilityPct * float64(p.Measured)
	}
	if r.Measured > 0 {
		r.RobustnessPct = 100 * float64(r.MOnTime) / float64(r.Measured)
		r.UtilityPct = utilityWeighted / float64(r.Measured)
	}
	if r.RobustnessPct > 0 {
		r.CostPerRobustness = r.TotalCostUSD / r.RobustnessPct
	}
	if r.Makespan > 0 && totalMachines > 0 {
		r.UtilizationPct = 100 * float64(r.BusyTicks) / (float64(r.Makespan) * float64(totalMachines))
	}
	if err := r.Validate(); err != nil {
		panic(err)
	}
	return r
}

// TaskStates exposes a snapshot of the per-task records (in arrival order)
// after Run, for tests and trace analysis tools.
func (e *Engine) TaskStates() []TaskState {
	out := make([]TaskState, len(e.tasks))
	for i, ts := range e.tasks {
		out[i] = *ts
	}
	return out
}

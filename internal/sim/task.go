// Package sim implements the online batch-mode resource allocation
// simulator of Fig. 1 in the paper: tasks arrive into a batch queue, a
// mapping heuristic assigns them to bounded machine queues, a task dropper
// removes doomed tasks, and machines execute assigned tasks first come
// first served with realized execution times drawn from the ground-truth
// laws behind the PET matrix.
//
// The engine is deterministic given (PET matrix, trace): all randomness is
// pre-drawn into the trace, so different mappers and droppers are compared
// on identical workloads (paired experiments).
package sim

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// Status is the lifecycle state of a task inside the simulator.
type Status uint8

// Task lifecycle states. The terminal states are CompletedOnTime,
// CompletedLate, DroppedReactive and DroppedProactive.
const (
	// StatusBatch: arrived, waiting unmapped in the batch queue.
	StatusBatch Status = iota
	// StatusQueued: assigned to a machine queue, not yet executing.
	StatusQueued
	// StatusRunning: executing on a machine.
	StatusRunning
	// StatusCompletedOnTime: finished strictly before its deadline.
	StatusCompletedOnTime
	// StatusCompletedLate: started before its deadline but finished at or
	// after it (Eq. 1 only drops tasks that cannot *begin* on time).
	StatusCompletedLate
	// StatusDroppedReactive: dropped after the fact — its deadline passed
	// while it waited (in the batch or a machine queue).
	StatusDroppedReactive
	// StatusDroppedProactive: dropped ahead of its deadline by the
	// proactive dropping policy.
	StatusDroppedProactive
	// StatusFailed: killed mid-execution by an injected machine failure
	// (only with Config.Failures enabled).
	StatusFailed
)

// Terminal reports whether the status is an end state.
func (s Status) Terminal() bool { return s >= StatusCompletedOnTime }

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusBatch:
		return "batch"
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusCompletedOnTime:
		return "completed-on-time"
	case StatusCompletedLate:
		return "completed-late"
	case StatusDroppedReactive:
		return "dropped-reactive"
	case StatusDroppedProactive:
		return "dropped-proactive"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// TaskState is the simulator's mutable record of one task.
type TaskState struct {
	Task    *workload.Task
	Status  Status
	Machine int      // machine index once assigned, −1 before
	Start   pmf.Tick // execution start time (valid once running)
	Finish  pmf.Tick // completion time (valid once completed)
}

// Deadline is a convenience accessor for the task's hard deadline.
func (t *TaskState) Deadline() pmf.Tick { return t.Task.Deadline }

package sim

import (
	"fmt"
	"io"

	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

// TypeBreakdown is the terminal-state mix of one task type.
type TypeBreakdown struct {
	Type             pet.TaskType
	Name             string
	Total            int
	OnTime           int
	Late             int
	DroppedReactive  int
	DroppedProactive int
	Failed           int
}

// RobustnessPct returns the type's on-time percentage.
func (b TypeBreakdown) RobustnessPct() float64 {
	if b.Total == 0 {
		return 0
	}
	return 100 * float64(b.OnTime) / float64(b.Total)
}

// MachineBreakdown is the utilization and throughput of one machine.
type MachineBreakdown struct {
	Machine   int
	Name      string
	Started   int      // tasks that began execution here
	OnTime    int      // of which finished strictly before their deadline
	BusyTicks pmf.Tick // accumulated execution time
	CostUSD   float64  // busy time × hourly price
}

// Breakdown aggregates per-type and per-machine statistics from a finished
// engine. Call after Run.
func (e *Engine) Breakdown() ([]TypeBreakdown, []MachineBreakdown) {
	types := make([]TypeBreakdown, e.pet.NumTaskTypes())
	names := e.pet.Profile().TaskTypeNames
	for i := range types {
		types[i] = TypeBreakdown{Type: pet.TaskType(i), Name: names[i]}
	}
	machines := make([]MachineBreakdown, len(e.machines))
	for i, m := range e.machines {
		machines[i] = MachineBreakdown{
			Machine:   i,
			Name:      m.Spec.Name,
			BusyTicks: m.busy,
			CostUSD:   float64(m.busy) / 3.6e6 * m.Spec.PriceHour,
		}
	}
	for _, ts := range e.tasks {
		tb := &types[ts.Task.Type]
		tb.Total++
		switch ts.Status {
		case StatusCompletedOnTime:
			tb.OnTime++
		case StatusCompletedLate:
			tb.Late++
		case StatusDroppedReactive:
			tb.DroppedReactive++
		case StatusDroppedProactive:
			tb.DroppedProactive++
		case StatusFailed:
			tb.Failed++
		}
		if ts.Machine >= 0 && ts.Status != StatusDroppedReactive && ts.Status != StatusDroppedProactive {
			mb := &machines[ts.Machine]
			mb.Started++
			if ts.Status == StatusCompletedOnTime {
				mb.OnTime++
			}
		}
	}
	return types, machines
}

// FprintBreakdown renders both breakdowns as aligned text.
func FprintBreakdown(w io.Writer, types []TypeBreakdown, machines []MachineBreakdown) {
	fmt.Fprintln(w, "per task type:")
	fmt.Fprintf(w, "  %-22s %6s %7s %6s %7s %7s %7s %8s\n",
		"type", "total", "ontime", "late", "reactD", "proactD", "failed", "robust%")
	for _, tb := range types {
		fmt.Fprintf(w, "  %-22.22s %6d %7d %6d %7d %7d %7d %8.2f\n",
			tb.Name, tb.Total, tb.OnTime, tb.Late, tb.DroppedReactive,
			tb.DroppedProactive, tb.Failed, tb.RobustnessPct())
	}
	fmt.Fprintln(w, "per machine:")
	fmt.Fprintf(w, "  %-42s %8s %7s %10s %10s\n", "machine", "started", "ontime", "busy(ms)", "cost($)")
	for _, mb := range machines {
		fmt.Fprintf(w, "  %-42.42s %8d %7d %10d %10.5f\n",
			mb.Name, mb.Started, mb.OnTime, mb.BusyTicks, mb.CostUSD)
	}
}

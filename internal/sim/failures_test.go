package sim

import (
	"testing"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/workload"
)

func TestFailureConfigEnabled(t *testing.T) {
	if (FailureConfig{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
	if !(FailureConfig{MTBF: 100, MeanRepair: 10}).Enabled() {
		t.Fatal("MTBF > 0 must enable")
	}
}

func TestFailuresKillRunningTasks(t *testing.T) {
	// Aggressive failures (MTBF 50 ms, repair 20 ms) against 100 ms tasks:
	// kills are near-certain across 200 tasks.
	m := pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 150, BinsPerPMF: 15})
	tr := workload.Generate(m, workload.Config{TotalTasks: 200, Window: 2000, GammaSlack: 3}, 21)
	cfg := DefaultConfig()
	cfg.BoundaryExclusion = 0
	cfg.Failures = FailureConfig{MTBF: 50, MeanRepair: 20, Seed: 1}
	res := New(m, tr, fifoMapper{}, core.NewHeuristic(), cfg).Run()
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Failed == 0 {
		t.Fatalf("no tasks killed under MTBF=50ms: %+v", res)
	}
}

func TestFailuresReduceRobustness(t *testing.T) {
	m := pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 150, BinsPerPMF: 15})
	tr := workload.Generate(m, workload.Config{TotalTasks: 400, Window: 4000, GammaSlack: 3}, 22)

	healthy := New(m, tr, fifoMapper{}, core.NewHeuristic(), DefaultConfig())
	resH := healthy.Run()

	cfg := DefaultConfig()
	cfg.Failures = FailureConfig{MTBF: 200, MeanRepair: 100, Seed: 2}
	resF := New(m, tr, fifoMapper{}, core.NewHeuristic(), cfg).Run()

	if err := resF.Validate(); err != nil {
		t.Fatal(err)
	}
	if resF.RobustnessPct >= resH.RobustnessPct {
		t.Fatalf("failures did not hurt: %.2f%% with vs %.2f%% without",
			resF.RobustnessPct, resH.RobustnessPct)
	}
}

func TestFailuresDisabledMatchesBaseline(t *testing.T) {
	// A zero FailureConfig must leave results bit-identical to the
	// pre-extension behaviour.
	m := pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 150, BinsPerPMF: 15})
	tr := workload.Generate(m, workload.Config{TotalTasks: 300, Window: 3000, GammaSlack: 2}, 23)
	a := New(m, tr, fifoMapper{}, core.NewHeuristic(), DefaultConfig()).Run()
	cfg := DefaultConfig()
	cfg.Failures = FailureConfig{} // explicit zero
	b := New(m, tr, fifoMapper{}, core.NewHeuristic(), cfg).Run()
	if *a != *b {
		t.Fatalf("disabled failures changed results:\n%+v\n%+v", a, b)
	}
	if a.Failed != 0 || b.Failed != 0 {
		t.Fatal("failed counts must be zero without injection")
	}
}

func TestFailuresDeterministic(t *testing.T) {
	m := pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 150, BinsPerPMF: 15})
	tr := workload.Generate(m, workload.Config{TotalTasks: 300, Window: 3000, GammaSlack: 2}, 24)
	cfg := DefaultConfig()
	cfg.Failures = FailureConfig{MTBF: 300, MeanRepair: 50, Seed: 9}
	a := New(m, tr, fifoMapper{}, core.NewHeuristic(), cfg).Run()
	b := New(m, tr, fifoMapper{}, core.NewHeuristic(), cfg).Run()
	if *a != *b {
		t.Fatalf("same failure seed, different results:\n%+v\n%+v", a, b)
	}
	cfg.Failures.Seed = 10
	c := New(m, tr, fifoMapper{}, core.NewHeuristic(), cfg).Run()
	if *a == *c {
		t.Fatal("different failure seeds should (overwhelmingly) differ")
	}
}

func TestFailedMachineAcceptsNoWork(t *testing.T) {
	// One machine, immediate long outage: a task arriving during the
	// outage must wait (or expire) rather than start.
	m := testMatrix(t, 1, pmf.Delta(10))
	tr := makeTrace(
		[]pmf.Tick{100},
		[]pmf.Tick{130},
		[]pmf.Tick{10},
	)
	cfg := cfgNoExclusion()
	// MTBF 1 tick → fails almost immediately; repair mean 1e6 → stays
	// down for the whole trial.
	cfg.Failures = FailureConfig{MTBF: 1, MeanRepair: 1_000_000, Seed: 3}
	res := New(m, tr, fifoMapper{}, nil, cfg).Run()
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.OnTime != 0 {
		t.Fatalf("task ran on a failed machine: %+v", res)
	}
	if res.DroppedReactive != 1 {
		t.Fatalf("task should expire waiting for repair: %+v", res)
	}
}

func TestFailureDuringIdleIsHarmless(t *testing.T) {
	// Failure strikes an idle machine before any arrival; after repair the
	// task completes normally.
	m := testMatrix(t, 1, pmf.Delta(10))
	tr := makeTrace(
		[]pmf.Tick{500},
		[]pmf.Tick{600},
		[]pmf.Tick{10},
	)
	cfg := cfgNoExclusion()
	cfg.Failures = FailureConfig{MTBF: 100, MeanRepair: 5, Seed: 4}
	res := New(m, tr, fifoMapper{}, nil, cfg).Run()
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.OnTime+res.Late+res.Failed+res.DroppedReactive != 1 {
		t.Fatalf("task unaccounted: %+v", res)
	}
}

func TestFailedStatusString(t *testing.T) {
	if StatusFailed.String() != "failed" || !StatusFailed.Terminal() {
		t.Fatal("StatusFailed misbehaves")
	}
}

package sim

import (
	"context"
	"fmt"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// Config tunes the resource-allocation system around the mapper and
// dropper.
type Config struct {
	// QueueCap bounds each machine queue, including the running task
	// (paper: 6).
	QueueCap int
	// BoundaryExclusion excludes the first and last N tasks (by arrival
	// order) from the measured metrics, so results reflect the
	// oversubscribed steady state (paper: 100).
	BoundaryExclusion int
	// DropOnArrival also runs the proactive dropper on arrival-triggered
	// mapping events where nothing changed in the machine queues. By
	// default the dropper engages on completion events and whenever a
	// reactive drop fires (§V-A: "the dropping mechanism is engaged each
	// time a system notices a task missing its deadline"); enabling this
	// matches the strict Fig. 4 pseudocode at a significant cost in
	// convolution work for identical queue states.
	DropOnArrival bool
	// Failures enables machine failure injection (disabled by default);
	// see FailureConfig.
	Failures FailureConfig
	// ReactiveGrace delays reactive dropping: a waiting task is discarded
	// only once now ≥ deadline + ReactiveGrace. Zero reproduces the
	// paper's model (no value after the deadline); non-zero supports the
	// approximate-computing extension, where slightly-late completions
	// still deliver partial utility (see sim.UtilityScore and
	// core.ApproxHeuristic).
	ReactiveGrace pmf.Tick
	// ColdChains disables the per-machine persistent chain caches: every
	// cache is invalidated at each mapping event, restoring the
	// wipe-everything recycle discipline. A diagnostic/verification knob —
	// the caches are bitwise-transparent, so enabling it must never change
	// a decision (the warm-vs-cold differential tests and cold journal
	// replay hold the engine to that).
	ColdChains bool
}

// DefaultConfig mirrors the paper's experimental setup.
func DefaultConfig() Config {
	return Config{QueueCap: 6, BoundaryExclusion: 100}
}

// Mapper assigns unmapped batch tasks to free machine-queue slots at every
// mapping event. Implementations live in internal/mapping.
type Mapper interface {
	// Name identifies the heuristic in experiment tables (e.g. "MinMin").
	Name() string
	// Map inspects the event's batch and machines and calls ev.Assign for
	// every mapping it commits.
	Map(ev *MappingEvent)
}

// Engine simulates one trial: one PET matrix, one trace, one mapper, one
// dropping policy.
type Engine struct {
	pet     *pet.Matrix
	trace   *workload.Trace
	mapper  Mapper
	dropper core.Policy
	// dropperStable caches whether dropper is a core.StableDecider, which
	// lets proactiveDrops skip machines whose decision inputs are bitwise
	// unchanged since an empty decision.
	dropperStable bool
	calc          *core.Calculus
	cfg           Config

	clock    pmf.Tick
	machines []*Machine
	batch    []*TaskState
	// tasks holds one heap-allocated state per arrived (or, in trace mode,
	// pre-loaded) task; pointer elements keep batch/queue references stable
	// when an open engine appends new arrivals.
	tasks       []*TaskState
	nextArrival int
	totalSlots  int
	failures    []machineFailureState
	// removed flags machines taken out of the live set at runtime (nil
	// until the first RemoveMachine); addedTypes records the types of
	// runtime-added machines in order. Both serialize via EngineSnapshot;
	// an engine that never churns carries no membership state at all.
	removed    []bool
	addedTypes []int
	// open marks an incrementally-fed engine (see NewOpen/Feed).
	open bool
	// coldChains disables the persistent chain caches (every machine's is
	// invalidated at each event), restoring the wipe-everything recycle
	// discipline. It exists for the warm-vs-cold differential tests, which
	// assert the caches never change a decision.
	coldChains bool
	// live is the incremental lifecycle census of arrived tasks, kept in
	// sync by arrive/transition so LiveCounts is O(1) — the admission
	// service reads it on every metrics scrape without stalling the
	// decision loop.
	live Live
	// journal, when set, observes every terminal transition (completion,
	// failure, drop) with the tick it happened at — the admission service's
	// WAL hook (see SetJournal).
	journal func(*TaskState, pmf.Tick)
}

// SetJournal installs (or clears, with nil) the terminal-transition hook:
// fn fires inside every transition to a terminal status, in event order,
// before the transition's mapping pipeline continues. The hook must not
// mutate the engine.
func (e *Engine) SetJournal(fn func(*TaskState, pmf.Tick)) { e.journal = fn }

// arrive registers a task entering the system in the batch queue.
func (e *Engine) arrive(ts *TaskState) {
	ts.Status = StatusBatch
	e.live.Arrived++
	e.live.Batch++
}

// transition moves an arrived task to a new lifecycle state, keeping the
// live census in sync. Every post-arrival status change must go through
// here (TestLiveCountsStayConsistent cross-checks against a full recount).
func (e *Engine) transition(ts *TaskState, to Status) {
	e.live.add(ts.Status, -1)
	ts.Status = to
	e.live.add(to, 1)
	if e.journal != nil && to.Terminal() {
		e.journal(ts, e.clock)
	}
}

// New builds an engine. A nil dropper defaults to core.ReactiveOnly. The
// calculus' compaction budget can be adjusted through Calc() before Run.
func New(m *pet.Matrix, tr *workload.Trace, mapper Mapper, dropper core.Policy, cfg Config) *Engine {
	if tr == nil {
		panic("sim: nil trace")
	}
	e := newEngine(m, mapper, dropper, cfg)
	e.trace = tr
	// One backing array for the fixed-length trace; per-task allocation is
	// only needed when an open engine grows its task list.
	states := make([]TaskState, len(tr.Tasks))
	e.tasks = make([]*TaskState, len(tr.Tasks))
	for i := range tr.Tasks {
		states[i] = TaskState{Task: &tr.Tasks[i], Machine: -1}
		e.tasks[i] = &states[i]
	}
	return e
}

// newEngine builds the trace-independent engine core shared by New and
// NewOpen, owning every machine of the matrix.
func newEngine(m *pet.Matrix, mapper Mapper, dropper core.Policy, cfg Config) *Engine {
	if m == nil {
		panic("sim: nil PET matrix")
	}
	return newEngineWith(m, m.Machines(), mapper, dropper, cfg)
}

// newEngineWith builds an engine over an explicit machine set — the full
// matrix for the classic engine, a shard's partition for a shard-scoped
// one (see NewOpenShard). The specs' Index fields must equal their
// positions so queue bookkeeping, failure state and mapper-visible indexes
// agree.
func newEngineWith(m *pet.Matrix, specs []pet.MachineSpec, mapper Mapper, dropper core.Policy, cfg Config) *Engine {
	if m == nil || mapper == nil {
		panic("sim: nil PET matrix or mapper")
	}
	if cfg.QueueCap < 1 {
		panic(fmt.Sprintf("sim: queue capacity %d, want >= 1", cfg.QueueCap))
	}
	if len(specs) == 0 {
		panic("sim: engine with no machines")
	}
	if dropper == nil {
		dropper = core.ReactiveOnly{}
	}
	e := &Engine{
		pet:     m,
		mapper:  mapper,
		dropper: dropper,
		calc:    core.NewCalculus(m),
		cfg:     cfg,
	}
	if sd, ok := dropper.(core.StableDecider); ok {
		e.dropperStable = sd.StableDecision()
	}
	e.coldChains = cfg.ColdChains
	e.machines = make([]*Machine, len(specs))
	for i, s := range specs {
		if s.Index != i {
			panic(fmt.Sprintf("sim: machine spec %q has index %d at position %d", s.Name, s.Index, i))
		}
		e.machines[i] = &Machine{Spec: s, completeAt: noCompletion, cache: e.calc.NewChainCache()}
	}
	e.totalSlots = len(specs) * cfg.QueueCap
	return e
}

// Calc exposes the completion-time calculus (e.g. to tune MaxImpulses).
func (e *Engine) Calc() *core.Calculus { return e.calc }

// Now returns the simulation clock.
func (e *Engine) Now() pmf.Tick { return e.clock }

// Run executes the trial to completion (system idle, all tasks terminal)
// and returns the result.
func (e *Engine) Run() *Result {
	res, err := e.RunContext(context.Background())
	if err != nil {
		// Unreachable: the background context is never cancelled.
		panic(err)
	}
	return res
}

// RunContext executes the trial like Run but polls ctx between events:
// when ctx is cancelled mid-run the simulation stops where it is and
// (nil, ctx.Err()) is returned. The engine is not reusable afterwards.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	done := ctx.Done()
	e.initFailures()
	for {
		if done != nil {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		// Candidate events, tie-broken in order: completion, arrival,
		// failure/repair.
		cm, ct := e.nextCompletion()
		at := pmf.Tick(-1)
		if e.nextArrival < len(e.tasks) {
			at = e.tasks[e.nextArrival].Task.Arrival
		}
		fm, ft, isRepair := -1, noCompletion, false
		if e.failures != nil {
			fm, ft, isRepair = e.nextFailureEvent()
		}

		switch {
		case ct != noCompletion && (at < 0 || ct <= at) && (ft == noCompletion || ct <= ft):
			e.advance(ct)
			e.handleCompletion(e.machines[cm])
		case at >= 0 && (ft == noCompletion || at <= ft):
			e.advance(at)
			e.handleArrival()
		case ft != noCompletion && e.hasWork():
			e.advance(ft)
			if isRepair {
				e.handleRepair(fm)
			} else {
				e.handleFailure(fm)
			}
		default:
			return e.finish(), nil
		}
	}
}

// hasWork reports whether any task can still make progress — it gates
// failure-event processing so an otherwise-drained system terminates.
func (e *Engine) hasWork() bool {
	if e.nextArrival < len(e.tasks) || len(e.batch) > 0 {
		return true
	}
	for _, m := range e.machines {
		if len(m.queue) > 0 {
			return true
		}
	}
	return false
}

// nextCompletion scans the (small, fixed) machine set for the earliest
// outstanding completion.
func (e *Engine) nextCompletion() (machine int, at pmf.Tick) {
	machine, at = -1, noCompletion
	for i, m := range e.machines {
		if m.completeAt != noCompletion && (at == noCompletion || m.completeAt < at) {
			machine, at = i, m.completeAt
		}
	}
	return machine, at
}

func (e *Engine) advance(t pmf.Tick) {
	if t < e.clock {
		panic(fmt.Sprintf("sim: clock moving backwards: %d -> %d", e.clock, t))
	}
	e.clock = t
}

func (e *Engine) handleArrival() {
	ts := e.tasks[e.nextArrival]
	e.nextArrival++
	e.arrive(ts)
	e.batch = append(e.batch, ts)
	e.mappingEvent(false)
}

func (e *Engine) handleCompletion(m *Machine) {
	ts := m.queue[0]
	ts.Finish = e.clock
	if ts.Finish < ts.Task.Deadline {
		e.transition(ts, StatusCompletedOnTime)
	} else {
		e.transition(ts, StatusCompletedLate)
	}
	m.busy += ts.Finish - ts.Start
	m.running = false
	m.completeAt = noCompletion
	m.removeAt(0)
	e.mappingEvent(true)
}

// mappingEvent performs the per-event pipeline of Fig. 1/Fig. 4: reactive
// dropping, proactive dropping, mapping, and starting idle machines.
// The calculus is recycled first: all completion-time chains evaluated
// within one event share the arena and the prefix cache. The machines'
// persistent chain caches survive the recycle; each revalidates lazily
// against its root signature when first consulted in the new event.
func (e *Engine) mappingEvent(fromCompletion bool) {
	e.calc.Recycle()
	if e.coldChains {
		for _, m := range e.machines {
			m.cache.Invalidate(core.InvalidateEvent)
			m.tailValid = false
		}
	}
	reacted := e.reactiveDrops()
	if fromCompletion || reacted || e.cfg.DropOnArrival {
		e.proactiveDrops()
	}
	ev := MappingEvent{e: e}
	e.mapper.Map(&ev)
	e.startIdle()
}

// reactiveDrops removes every batched or pending task whose (grace-
// extended) deadline has passed: it can no longer begin while it still has
// value, so per Eq. 1 it is dropped. Reports whether anything was dropped.
func (e *Engine) reactiveDrops() bool {
	cutoff := func(ts *TaskState) pmf.Tick { return ts.Task.Deadline + e.cfg.ReactiveGrace }
	dropped := false
	// Batch queue.
	kept := e.batch[:0]
	for _, ts := range e.batch {
		if cutoff(ts) <= e.clock {
			e.transition(ts, StatusDroppedReactive)
			dropped = true
		} else {
			kept = append(kept, ts)
		}
	}
	e.batch = kept
	// Machine queues (pending entries only; running tasks finish even if
	// late).
	for _, m := range e.machines {
		for i := m.firstPending(); i < len(m.queue); {
			if cutoff(m.queue[i]) <= e.clock {
				e.transition(m.removeAt(i), StatusDroppedReactive)
				dropped = true
			} else {
				i++
			}
		}
	}
	return dropped
}

// proactiveDrops consults the dropping policy for every machine queue.
func (e *Engine) proactiveDrops() {
	pressure := 0.0
	if e.totalSlots > 0 {
		pressure = float64(len(e.batch)) / float64(e.totalSlots)
	}
	for _, m := range e.machines {
		if len(m.queue)-m.firstPending() < 1 {
			continue
		}
		q := m.coreQueue(e.clock)
		// A stable policy re-deciding over a bitwise-unchanged root and
		// queue reproduces its previous decision; when that decision was
		// "drop nothing", re-consulting it is a no-op — skip the walk.
		if e.dropperStable && m.decNone && m.decVer == m.version &&
			m.decGen == m.cache.Gen() && e.calc.RootStable(m.cache, m.Type(), e.clock, q) {
			continue
		}
		ctx := core.Context{
			Calc:          e.calc,
			Cache:         m.cache,
			Machine:       m.Type(),
			Now:           e.clock,
			Queue:         q,
			BatchPressure: pressure,
			Grace:         e.cfg.ReactiveGrace,
		}
		idxs := e.dropper.Decide(&ctx)
		m.decGen, m.decVer, m.decNone = m.cache.Gen(), m.version, len(idxs) == 0
		if len(idxs) == 0 {
			continue
		}
		fp := m.firstPending()
		// Remove back to front so earlier indexes stay valid.
		for k := len(idxs) - 1; k >= 0; k-- {
			i := idxs[k]
			if i < fp || i >= len(m.queue) {
				panic(fmt.Sprintf("sim: dropper %q returned invalid index %d (queue %d, first pending %d)",
					e.dropper.Name(), i, len(m.queue), fp))
			}
			e.transition(m.removeAt(i), StatusDroppedProactive)
		}
	}
}

// startIdle begins execution on any machine that is idle but has queued
// work. Realized execution times come pre-drawn from the trace. Failed
// machines hold their queues until repaired.
func (e *Engine) startIdle() {
	for i, m := range e.machines {
		if m.running || e.failed(i) {
			continue
		}
		for len(m.queue) > 0 {
			ts := m.queue[0]
			if ts.Task.Deadline+e.cfg.ReactiveGrace <= e.clock {
				// Cannot begin while it still has value: reactive drop at
				// start time (Eq. 1 semantics, grace-extended).
				e.transition(m.removeAt(0), StatusDroppedReactive)
				continue
			}
			exec := ts.Task.ExecByType[m.Type()]
			e.transition(ts, StatusRunning)
			ts.Start = e.clock
			m.running = true
			m.completeAt = e.clock + exec
			m.version++
			break
		}
	}
}

// finish validates terminal bookkeeping and assembles the result. Any task
// still in the batch at drain time could never be mapped before expiring;
// it is accounted as reactively dropped.
func (e *Engine) finish() *Result {
	for _, ts := range e.batch {
		e.transition(ts, StatusDroppedReactive)
	}
	e.batch = nil
	for _, m := range e.machines {
		if len(m.queue) != 0 || m.running {
			panic("sim: engine drained with non-empty machine queue")
		}
	}
	return e.buildResult()
}

package sim

import (
	"sort"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/stats"
)

// ChurnConfig enables machine churn injection — runtime membership change,
// as opposed to FailureConfig's transient outages: a churned machine is
// removed from the live set entirely (its pending queue handed back to the
// batch) and later revived empty. Churn plans are pre-generated from the
// seed (GenerateChurn), so trials with equal seeds see equal membership
// schedules.
type ChurnConfig struct {
	// MeanInterval is the mean time between kill events across the whole
	// cluster, in ticks; 0 disables churn.
	MeanInterval pmf.Tick
	// MeanDown is the mean outage duration before the killed machine is
	// revived, in ticks.
	MeanDown pmf.Tick
	// Seed drives the churn plan.
	Seed int64
}

// Enabled reports whether churn injection is active.
func (c ChurnConfig) Enabled() bool { return c.MeanInterval > 0 }

// ChurnOp is one kind of membership change.
type ChurnOp int

const (
	// ChurnRemove takes a machine out of the live set (queue handed off).
	ChurnRemove ChurnOp = iota
	// ChurnRevive returns a removed machine to the live set.
	ChurnRevive
	// ChurnAdd grows the live set with a machine of an existing type.
	ChurnAdd
)

// String names the op for plan displays and logs.
func (op ChurnOp) String() string {
	switch op {
	case ChurnRemove:
		return "remove"
	case ChurnRevive:
		return "revive"
	case ChurnAdd:
		return "add"
	}
	return "unknown"
}

// ChurnEvent is one timed membership change in a churn plan.
type ChurnEvent struct {
	At      pmf.Tick
	Op      ChurnOp
	Machine int // matrix-wide machine index (remove/revive)
	Type    int // machine type (add)
}

// GenerateChurn builds a deterministic churn plan over the arrival window:
// kill events arrive as a Poisson process with the configured mean
// interval, each killed machine is revived after an exponential downtime,
// and the plan never takes down the last live machine. Events are returned
// in time order; revives scheduled past the window are omitted (the
// machine stays out for the drain). A disabled config or a single-machine
// system yields an empty plan.
func GenerateChurn(machines int, window pmf.Tick, cfg ChurnConfig) []ChurnEvent {
	if !cfg.Enabled() || machines < 2 {
		return nil
	}
	rng := stats.NewRNG(cfg.Seed)
	reviveAt := make([]pmf.Tick, machines)
	for i := range reviveAt {
		reviveAt[i] = noCompletion
	}
	down := 0
	var evs []ChurnEvent
	t := pmf.Tick(0)
	for {
		t += 1 + pmf.Tick(rng.Exponential(float64(cfg.MeanInterval)))
		if t >= window {
			break
		}
		// Apply revives due by t first so the pick below sees the current
		// membership.
		for i := 0; i < machines; i++ {
			if reviveAt[i] != noCompletion && reviveAt[i] <= t {
				evs = append(evs, ChurnEvent{At: reviveAt[i], Op: ChurnRevive, Machine: i})
				reviveAt[i] = noCompletion
				down--
			}
		}
		if down >= machines-1 {
			continue // never kill the last live machine
		}
		pick := rng.Intn(machines)
		for reviveAt[pick] != noCompletion {
			pick = rng.Intn(machines)
		}
		evs = append(evs, ChurnEvent{At: t, Op: ChurnRemove, Machine: pick})
		reviveAt[pick] = t + 1 + pmf.Tick(rng.Exponential(float64(cfg.MeanDown)))
		down++
	}
	for i := 0; i < machines; i++ {
		if reviveAt[i] != noCompletion && reviveAt[i] < window {
			evs = append(evs, ChurnEvent{At: reviveAt[i], Op: ChurnRevive, Machine: i})
		}
	}
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].At < evs[b].At })
	return evs
}

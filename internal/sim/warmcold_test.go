package sim

import (
	"math/rand"
	"testing"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/router"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// Warm-vs-cold differential suite.
//
// The persistent per-machine chain caches (core.ChainCache) are supposed
// to be bitwise-transparent: signature-gated reuse must never change a
// PMF, and therefore never change a decision. These tests hold the engine
// to that by running every scenario twice — caches warm (the default) and
// Config.ColdChains (every cache invalidated at each mapping event, the
// old wipe-everything discipline) — and requiring identical results down
// to per-task terminal states. The warm side also exercises the
// StableDecider skip (an empty drop decision memoized across events),
// which the cold side never takes.

// requireSameRun fails unless the two engines produced identical results
// and identical per-task histories.
func requireSameRun(t *testing.T, label string, warm, cold *Engine, rw, rc *Result) {
	t.Helper()
	if *rw != *rc {
		t.Fatalf("%s: results diverge:\nwarm %+v\ncold %+v", label, rw, rc)
	}
	tw, tc := warm.TaskStates(), cold.TaskStates()
	if len(tw) != len(tc) {
		t.Fatalf("%s: task counts diverge: warm %d cold %d", label, len(tw), len(tc))
	}
	for i := range tw {
		a, b := tw[i], tc[i]
		if a.Status != b.Status || a.Start != b.Start || a.Finish != b.Finish || a.Machine != b.Machine {
			t.Fatalf("%s: task %d diverges:\nwarm status=%v start=%d finish=%d machine=%d\ncold status=%v start=%d finish=%d machine=%d",
				label, a.Task.ID, a.Status, a.Start, a.Finish, a.Machine, b.Status, b.Start, b.Finish, b.Machine)
		}
	}
	// If the run evaluated chains at all (reactive-only configurations
	// don't), the warm side must actually have reused cached roots —
	// otherwise the differential is vacuous.
	if st := warm.Calc().Stats(); st.RootMisses > 0 && st.RootHits == 0 {
		t.Fatalf("%s: warm run evaluated chains but never hit a cached root — differential is vacuous", label)
	}
}

// TestWarmVsColdDifferentialSweep replays randomized closed-trace
// configurations — profiles, droppers, queue bounds, failures, grace —
// warm and cold and requires identical outcomes.
func TestWarmVsColdDifferentialSweep(t *testing.T) {
	profiles := []pet.Profile{pet.VideoProfile(), pet.HomogeneousProfile(), pet.SPECProfile(3)}
	matrices := make([]*pet.Matrix, len(profiles))
	for i, p := range profiles {
		matrices[i] = pet.Build(p, int64(i+1), pet.BuildOptions{SamplesPerCell: 120, BinsPerPMF: 12})
	}
	droppers := []func() core.Policy{
		func() core.Policy { return nil },
		func() core.Policy { return core.NewHeuristic() },
		func() core.Policy { return core.Optimal{} },
		func() core.Policy { return core.NewThreshold() },
		func() core.Policy { return core.NewApproxHeuristic(80) },
	}
	r := rand.New(rand.NewSource(42))
	const cases = 12
	for i := 0; i < cases; i++ {
		m := matrices[r.Intn(len(matrices))]
		mk := droppers[r.Intn(len(droppers))]
		cfg := DefaultConfig()
		cfg.QueueCap = 2 + r.Intn(6)
		cfg.BoundaryExclusion = 0
		cfg.DropOnArrival = r.Intn(2) == 0
		if r.Intn(3) == 0 {
			cfg.ReactiveGrace = pmf.Tick(r.Intn(100))
		}
		if r.Intn(3) == 0 {
			cfg.Failures = FailureConfig{MTBF: pmf.Tick(300 + r.Intn(1500)), MeanRepair: pmf.Tick(20 + r.Intn(150)), Seed: int64(i)}
		}
		tr := workload.Generate(m, workload.Config{
			TotalTasks: 120 + r.Intn(180),
			Window:     pmf.Tick(700 + r.Intn(2000)),
			GammaSlack: 0.5 + 3*r.Float64(),
		}, int64(i))

		warm := New(m, tr, fifoMapper{}, mk(), cfg)
		coldCfg := cfg
		coldCfg.ColdChains = true
		cold := New(m, tr, fifoMapper{}, mk(), coldCfg)
		requireSameRun(t, "sweep case", warm, cold, warm.Run(), cold.Run())
	}
}

// churnScript drives one deterministic open-engine run: tasks fed in
// order with a seeded schedule of membership operations (remove with and
// without handoff, revive, add) interleaved between feeds. Both engines
// receive the identical script; ops are chosen against a local membership
// model so they are always legal on both.
func churnScript(t *testing.T, e *Engine, tasks []workload.Task, seed int64, machines int) *Result {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	removed := make([]bool, machines)
	nRemoved := 0
	for i := range tasks {
		e.Feed(&tasks[i])
		if i%7 != 6 {
			continue
		}
		switch r.Intn(4) {
		case 0, 1: // remove a live machine, keeping at least one alive
			if machines-nRemoved > 1 {
				j := r.Intn(machines)
				for removed[j] {
					j = (j + 1) % machines
				}
				if err := e.RemoveMachine(j, r.Intn(2) == 0); err != nil {
					t.Fatalf("remove %d: %v", j, err)
				}
				removed[j], nRemoved = true, nRemoved+1
			}
		case 2: // revive a removed machine
			if nRemoved > 0 {
				j := r.Intn(machines)
				for !removed[j] {
					j = (j + 1) % machines
				}
				if err := e.ReviveMachine(j); err != nil {
					t.Fatalf("revive %d: %v", j, err)
				}
				removed[j], nRemoved = false, nRemoved-1
			}
		case 3: // grow the cluster (added machines are never removed here)
			if _, err := e.AddMachine(0); err != nil {
				t.Fatalf("add: %v", err)
			}
		}
	}
	return e.Drain()
}

// TestWarmVsColdChurnDifferential runs the open engine through runtime
// membership churn — removals (handoff and force-drop), revivals,
// additions — warm and cold. Churn invalidations flow through
// ChainCache.Invalidate(InvalidateChurn), so this pins the lifecycle
// transitions the root signature cannot see.
func TestWarmVsColdChurnDifferential(t *testing.T) {
	const machines = 4
	for _, dropper := range []func() core.Policy{
		func() core.Policy { return core.NewHeuristic() },
		func() core.Policy { return core.NewThreshold() },
	} {
		m := testMatrix(t, machines, pmf.Delta(10), pmf.Delta(25))
		tasks := randomOpenTasks(160, 7)
		for i := range tasks {
			if i%3 == 0 {
				tasks[i].Type = 1
				tasks[i].ExecByType = []pmf.Tick{0, tasks[i].ExecByType[0]}
			} else {
				tasks[i].ExecByType = []pmf.Tick{tasks[i].ExecByType[0], 0}
			}
		}
		warm := NewOpen(m, fifoMapper{}, dropper(), cfgNoExclusion())
		coldCfg := cfgNoExclusion()
		coldCfg.ColdChains = true
		cold := NewOpen(m, fifoMapper{}, dropper(), coldCfg)
		rw := churnScript(t, warm, tasks, 1234, machines)
		rc := churnScript(t, cold, tasks, 1234, machines)
		requireSameRun(t, "churn", warm, cold, rw, rc)
		if warm.Calc().Stats().InvalidationsChurn == 0 {
			t.Fatal("churn script produced no churn invalidations — differential is vacuous")
		}
	}
}

// TestWarmVsColdClusterApplyChurn is the cluster-level differential: a
// sharded cluster fed a generated trace with a GenerateChurn plan applied
// through Cluster.ApplyChurn at arrival boundaries (the scenario driver's
// discipline) must route, decide and drain identically warm and cold.
func TestWarmVsColdClusterApplyChurn(t *testing.T) {
	m, tr := clusterTestSystem(t, 400, 5)
	window := tr.Cfg.Window
	plan := GenerateChurn(len(m.Machines()), window, ChurnConfig{
		MeanInterval: window / 6,
		MeanDown:     window / 10,
		Seed:         3,
	})
	if len(plan) == 0 {
		t.Fatal("setup: empty churn plan")
	}
	run := func(cold bool) ([]int, *Result, *Cluster) {
		cfg := Config{QueueCap: 6, ColdChains: cold}
		pol, err := router.FromSpec("rr")
		if err != nil {
			t.Fatal(err)
		}
		cl, err := NewCluster(m, 2, pol, pamHeuristic(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		routes := make([]int, len(tr.Tasks))
		next := 0
		for i := range tr.Tasks {
			for next < len(plan) && plan[next].At <= tr.Tasks[i].Arrival {
				if err := cl.ApplyChurn(plan[next]); err != nil {
					t.Fatalf("churn event %d: %v", next, err)
				}
				next++
			}
			routes[i], _ = cl.Feed(&tr.Tasks[i])
		}
		return routes, cl.Drain(), cl
	}
	warmRoutes, rw, warmCl := run(false)
	coldRoutes, rc, _ := run(true)
	if *rw != *rc {
		t.Fatalf("cluster results diverge:\nwarm %+v\ncold %+v", rw, rc)
	}
	for i := range warmRoutes {
		if warmRoutes[i] != coldRoutes[i] {
			t.Fatalf("task %d routed to shard %d warm, %d cold", i, warmRoutes[i], coldRoutes[i])
		}
	}
	var churnInv, rootHits uint64
	for _, eng := range warmCl.Shards() {
		st := eng.Calc().Stats()
		churnInv += st.InvalidationsChurn
		rootHits += st.RootHits
	}
	if churnInv == 0 {
		t.Fatal("plan applied but no churn invalidations recorded")
	}
	if rootHits == 0 {
		t.Fatal("warm cluster never reused a cached root")
	}
}

// FuzzWarmVsColdFeed derives an arbitrary feed schedule (arrival gaps,
// slacks, execution times, occasional machine churn) from the fuzz input
// and requires warm and cold engines to agree on every admission outcome
// and the final result.
func FuzzWarmVsColdFeed(f *testing.F) {
	f.Add([]byte{3, 40, 9, 0, 12, 200, 30, 7})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{250, 1, 99, 33, 128, 64, 32, 16, 8, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		const machines = 3
		m := testMatrix(t, machines, pmf.Delta(10))
		run := func(cold bool) (*Engine, *Result) {
			cfg := cfgNoExclusion()
			cfg.QueueCap = 2 + int(data[0])%4
			cfg.ColdChains = cold
			e := NewOpen(m, fifoMapper{}, core.NewHeuristic(), cfg)
			clock, id := pmf.Tick(0), 0
			removed := false
			for i := 1; i+2 < len(data) && id < 120; i += 3 {
				clock += pmf.Tick(data[i] % 16)
				task := workload.Task{
					ID:         id,
					Type:       0,
					Arrival:    clock,
					Deadline:   clock + 1 + pmf.Tick(data[i+1]%80),
					ExecByType: []pmf.Tick{1 + pmf.Tick(data[i+2]%24)},
				}
				e.Feed(&task)
				id++
				// Byte-steered churn: toggle machine 1 in and out.
				switch data[i] % 11 {
				case 9:
					if !removed {
						if err := e.RemoveMachine(1, data[i+1]%2 == 0); err != nil {
							t.Fatal(err)
						}
						removed = true
					}
				case 10:
					if removed {
						if err := e.ReviveMachine(1); err != nil {
							t.Fatal(err)
						}
						removed = false
					}
				}
			}
			return e, e.Drain()
		}
		warm, rw := run(false)
		cold, rc := run(true)
		if *rw != *rc {
			t.Fatalf("results diverge:\nwarm %+v\ncold %+v", rw, rc)
		}
		tw, tc := warm.TaskStates(), cold.TaskStates()
		for i := range tw {
			a, b := tw[i], tc[i]
			if a.Status != b.Status || a.Start != b.Start || a.Finish != b.Finish || a.Machine != b.Machine {
				t.Fatalf("task %d diverges: warm %v@%d cold %v@%d", a.Task.ID, a.Status, a.Machine, b.Status, b.Machine)
			}
		}
	})
}

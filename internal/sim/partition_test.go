package sim

import (
	"testing"

	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/router"
)

// TestPartitionSpecsComposesGlobals checks the two-level deal a
// multi-process deployment performs: PartitionMachines splits the matrix
// across server processes, PartitionSpecs sub-shards one process's part,
// and the composed translations must still be covering, disjoint and
// matrix-wide.
func TestPartitionSpecsComposesGlobals(t *testing.T) {
	m, err := pet.CachedMatrix("video")
	if err != nil {
		t.Fatal(err)
	}
	total := len(m.Machines())
	parts, globals := PartitionMachines(m, 2)

	seen := make(map[int]int) // matrix-wide index → count
	for k := range parts {
		shards, subGlobals := PartitionSpecs(parts[k], globals[k], 2)
		for s := range shards {
			if len(shards[s]) != len(subGlobals[s]) {
				t.Fatalf("part %d shard %d: %d specs vs %d globals", k, s, len(shards[s]), len(subGlobals[s]))
			}
			for local, spec := range shards[s] {
				if spec.Index != local {
					t.Fatalf("part %d shard %d machine %d: local Index %d", k, s, local, spec.Index)
				}
				g := subGlobals[s][local]
				if g < 0 || g >= total {
					t.Fatalf("part %d shard %d: global index %d outside matrix of %d", k, s, g, total)
				}
				// The composed translation must land on the same machine the
				// matrix holds at the global index.
				if m.Machines()[g].Name != spec.Name {
					t.Fatalf("global %d is %q in the matrix but %q in the shard", g, m.Machines()[g].Name, spec.Name)
				}
				seen[g]++
			}
		}
	}
	if len(seen) != total {
		t.Fatalf("two-level partition covers %d of %d machines", len(seen), total)
	}
	for g, n := range seen {
		if n != 1 {
			t.Fatalf("machine %d appears %d times across the partition", g, n)
		}
	}
}

// TestNewClusterOverEqualsFullClusterUnion replays one trace through (a)
// one 2-shard cluster over the whole matrix and (b) two 1-shard clusters
// over the two PartitionMachines parts with the matching class-partition
// router, and requires the merged accounting to be self-consistent: the
// same total tasks, and every machine owned exactly once (NumMachines
// sums to the matrix).
func TestNewClusterOverEqualsFullClusterUnion(t *testing.T) {
	m, tr := clusterTestSystem(t, 600, 3)
	parts, globals := PartitionMachines(m, 2)

	clusters := make([]*Cluster, 2)
	for k := range clusters {
		cl, err := NewClusterOver(m, parts[k], globals[k], 1, router.NewRoundRobin(), pamHeuristic(t), Config{QueueCap: 6}, int64(k)*1009)
		if err != nil {
			t.Fatal(err)
		}
		clusters[k] = cl
		if cl.NumMachines() != len(parts[k]) {
			t.Fatalf("cluster %d owns %d machines, want %d", k, cl.NumMachines(), len(parts[k]))
		}
	}
	if clusters[0].NumMachines()+clusters[1].NumMachines() != len(m.Machines()) {
		t.Fatalf("partition clusters own %d+%d machines, matrix has %d",
			clusters[0].NumMachines(), clusters[1].NumMachines(), len(m.Machines()))
	}

	// Deal tasks by class hash — the router tier's assignment — and run
	// both partitions to completion.
	hash := router.NewClassHash(0)
	views := []*router.ShardView{router.NewShardView(m.NumTaskTypes()), router.NewShardView(m.NumTaskTypes())}
	fed := make([]int, 2)
	for i := range tr.Tasks {
		task := &tr.Tasks[i]
		k := hash.Route(router.Task{Class: int(task.Type), Arrival: task.Arrival, Deadline: task.Deadline}, views)
		clusters[k].Feed(task)
		fed[k]++
	}
	results := make([]*Result, 2)
	for k, cl := range clusters {
		results[k] = cl.Drain()
		if results[k].Total != fed[k] {
			t.Fatalf("cluster %d accounted %d tasks, fed %d", k, results[k].Total, fed[k])
		}
	}
	merged := MergeResults(results, len(m.Machines()))
	if merged.Total != len(tr.Tasks) {
		t.Fatalf("merged Total = %d, want %d", merged.Total, len(tr.Tasks))
	}
	if merged.MOnTime+merged.MLate+merged.MDroppedReactive+merged.MDroppedProactive+merged.MFailed != merged.Measured {
		t.Fatalf("merged accounting does not partition Measured: %+v", merged)
	}
}

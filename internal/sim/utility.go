package sim

import "github.com/hpcclab/taskdrop/internal/pmf"

// UtilityScore evaluates the approximate-computing value delivered by a
// finished trial (the §VI extension): each task completed strictly before
// its deadline is worth 1, a task finishing within the grace window after
// its deadline is worth the linear remainder 1 − lateness/grace, and
// everything else (later completions, drops, failures) is worth 0.
//
// The first and last boundaryExclusion tasks are excluded, mirroring the
// robustness metric. The result is the mean utility of the measured tasks
// as a percentage.
func UtilityScore(states []TaskState, grace pmf.Tick, boundaryExclusion int) float64 {
	ptrs := make([]*TaskState, len(states))
	for i := range states {
		ptrs[i] = &states[i]
	}
	return utilityScore(ptrs, grace, boundaryExclusion)
}

// utilityScore is UtilityScore over the engine's own pointer slice,
// avoiding the snapshot copy on the drain path.
func utilityScore(states []*TaskState, grace pmf.Tick, boundaryExclusion int) float64 {
	lo := boundaryExclusion
	hi := len(states) - boundaryExclusion
	if hi <= lo {
		lo, hi = 0, len(states)
	}
	if hi == lo {
		return 0
	}
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += taskUtility(states[i], grace)
	}
	return 100 * sum / float64(hi-lo)
}

// taskUtility scores one terminal task state.
func taskUtility(ts *TaskState, grace pmf.Tick) float64 {
	switch ts.Status {
	case StatusCompletedOnTime:
		return 1
	case StatusCompletedLate:
		if grace <= 0 {
			return 0
		}
		late := ts.Finish - ts.Task.Deadline
		if late >= grace {
			return 0
		}
		return 1 - float64(late)/float64(grace)
	default:
		return 0
	}
}

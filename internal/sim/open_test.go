package sim

import (
	"testing"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// parityTrace builds a moderately oversubscribed random trace on a small
// two-type system so every decision path (map, defer, reactive drop,
// proactive drop) is exercised.
func parityMatrixAndTrace(t *testing.T, seed int64) (*pet.Matrix, *workload.Trace) {
	t.Helper()
	p := pet.Profile{
		Name:             "opentest",
		TaskTypeNames:    []string{"short", "long"},
		MachineTypeNames: []string{"fast", "slow"},
		MeanMS:           [][]float64{{20, 45}, {60, 130}},
		MachinesPerType:  []int{1, 1},
		PriceHour:        []float64{1, 0.5},
		GammaScaleRange:  [2]float64{1, 4},
	}
	m := pet.Build(p, 7, pet.BuildOptions{SamplesPerCell: 200, BinsPerPMF: 12})
	tr := workload.Generate(m, workload.Config{TotalTasks: 400, Window: 4000, GammaSlack: 1.5}, seed)
	return m, tr
}

// TestOpenEngineMatchesTraceDriven is the determinism keystone of the
// online service: feeding a trace task-by-task through an open engine must
// reproduce the trace-driven run exactly — same per-task terminal states,
// same machines, same Result.
func TestOpenEngineMatchesTraceDriven(t *testing.T) {
	for _, dropper := range []core.Policy{nil, core.NewHeuristic()} {
		m, tr := parityMatrixAndTrace(t, 11)
		cfg := cfgNoExclusion()

		offline := New(m, tr, MCTLike(t), dropper, cfg)
		wantRes := offline.Run()
		want := offline.TaskStates()

		open := NewOpen(m, MCTLike(t), dropper, cfg)
		for i := range tr.Tasks {
			open.Feed(&tr.Tasks[i])
		}
		gotRes := open.Drain()
		got := open.TaskStates()

		if *gotRes != *wantRes {
			t.Fatalf("dropper %v: open Result = %+v, want %+v", dropper, gotRes, wantRes)
		}
		if len(got) != len(want) {
			t.Fatalf("task count %d != %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Status != want[i].Status || got[i].Machine != want[i].Machine ||
				got[i].Start != want[i].Start || got[i].Finish != want[i].Finish {
				t.Fatalf("dropper %v: task %d diverged: open %+v vs trace %+v",
					dropper, i, got[i], want[i])
			}
		}
	}
}

// MCTLike returns a deterministic real mapper for parity tests.
func MCTLike(t *testing.T) Mapper {
	t.Helper()
	return fifoMapper{}
}

// TestOpenEngineMatchesTraceDrivenWithFailures extends parity to the
// failure-injection path, whose RNG draws are event-driven.
func TestOpenEngineMatchesTraceDrivenWithFailures(t *testing.T) {
	m, tr := parityMatrixAndTrace(t, 5)
	cfg := cfgNoExclusion()
	cfg.Failures = FailureConfig{MTBF: 900, MeanRepair: 120, Seed: 3}

	offline := New(m, tr, fifoMapper{}, core.NewHeuristic(), cfg)
	wantRes := offline.Run()

	open := NewOpen(m, fifoMapper{}, core.NewHeuristic(), cfg)
	for i := range tr.Tasks {
		open.Feed(&tr.Tasks[i])
	}
	gotRes := open.Drain()

	if *gotRes != *wantRes {
		t.Fatalf("open Result = %+v, want %+v", gotRes, wantRes)
	}
}

func TestOpenFeedClampsEarlyArrival(t *testing.T) {
	m := testMatrix(t, 1, pmf.Delta(10))
	open := NewOpen(m, fifoMapper{}, nil, cfgNoExclusion())
	open.Feed(&workload.Task{ID: 0, Arrival: 50, Deadline: 200, ExecByType: []pmf.Tick{10}})
	// Arrival before the clock: treated as arriving now, not a clock reset.
	ts := open.Feed(&workload.Task{ID: 1, Arrival: 10, Deadline: 200, ExecByType: []pmf.Tick{10}})
	if open.Now() != 50 {
		t.Fatalf("clock = %d, want 50", open.Now())
	}
	if ts.Status != StatusQueued && ts.Status != StatusRunning {
		t.Fatalf("late-fed task status = %v", ts.Status)
	}
	res := open.Drain()
	if res.Total != 2 || res.OnTime != 2 {
		t.Fatalf("result = %+v", res)
	}
}

// TestLiveCountsStayConsistent cross-checks the incremental O(1) census
// against a full recount at every feed step and after drain, under
// proactive dropping and failure injection.
func TestLiveCountsStayConsistent(t *testing.T) {
	m, tr := parityMatrixAndTrace(t, 21)
	cfg := cfgNoExclusion()
	cfg.Failures = FailureConfig{MTBF: 700, MeanRepair: 90, Seed: 8}
	open := NewOpen(m, fifoMapper{}, core.NewHeuristic(), cfg)
	for i := range tr.Tasks {
		open.Feed(&tr.Tasks[i])
		if i%37 == 0 {
			if got, want := open.LiveCounts(), open.recountLive(); got != want {
				t.Fatalf("after feed %d: incremental %+v != recount %+v", i, got, want)
			}
		}
	}
	res := open.Drain()
	got, want := open.LiveCounts(), open.recountLive()
	if got != want {
		t.Fatalf("after drain: incremental %+v != recount %+v", got, want)
	}
	if got.OnTime != res.OnTime || got.Failed != res.Failed || got.Batch+got.Queued+got.Running != 0 {
		t.Fatalf("census %+v inconsistent with result %+v", got, res)
	}
}

func TestOpenLiveCountsAndQueueDepths(t *testing.T) {
	m := testMatrix(t, 2, pmf.Delta(100))
	open := NewOpen(m, fifoMapper{}, nil, cfgNoExclusion())
	for i := 0; i < 5; i++ {
		open.Feed(&workload.Task{ID: i, Arrival: 1, Deadline: 10_000, ExecByType: []pmf.Tick{100}})
	}
	// fifoMapper fills machine 0 first: one running head, four pending.
	lc := open.LiveCounts()
	if lc.Arrived != 5 || lc.Running != 1 || lc.Queued != 4 {
		t.Fatalf("live = %+v", lc)
	}
	depths := open.QueueDepths()
	if len(depths) != 2 || depths[0]+depths[1] != 5 {
		t.Fatalf("depths = %v", depths)
	}
	if res := open.Drain(); res.OnTime != 5 {
		t.Fatalf("result = %+v", res)
	}
}

package sim

import (
	"math"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/workload"
)

func mkState(status Status, deadline, finish pmf.Tick) TaskState {
	return TaskState{
		Task:   &workload.Task{Deadline: deadline},
		Status: status,
		Finish: finish,
	}
}

func TestTaskUtility(t *testing.T) {
	cases := []struct {
		name  string
		ts    TaskState
		grace pmf.Tick
		want  float64
	}{
		{"on-time", mkState(StatusCompletedOnTime, 100, 90), 10, 1},
		{"late-half-grace", mkState(StatusCompletedLate, 100, 105), 10, 0.5},
		{"late-at-deadline", mkState(StatusCompletedLate, 100, 100), 10, 1},
		{"late-beyond-grace", mkState(StatusCompletedLate, 100, 115), 10, 0},
		{"late-zero-grace", mkState(StatusCompletedLate, 100, 101), 0, 0},
		{"dropped", mkState(StatusDroppedProactive, 100, 0), 10, 0},
		{"failed", mkState(StatusFailed, 100, 50), 10, 0},
	}
	for _, c := range cases {
		if got := taskUtility(&c.ts, c.grace); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: utility = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestUtilityScoreAveragesMeasuredWindow(t *testing.T) {
	states := []TaskState{
		mkState(StatusCompletedOnTime, 100, 90),  // excluded (boundary)
		mkState(StatusCompletedOnTime, 100, 90),  // 1.0
		mkState(StatusCompletedLate, 100, 105),   // 0.5
		mkState(StatusDroppedProactive, 100, 0),  // 0.0
		mkState(StatusCompletedOnTime, 100, 200), // excluded (boundary)
	}
	got := UtilityScore(states, 10, 1)
	want := 100 * (1 + 0.5 + 0) / 3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("score = %v, want %v", got, want)
	}
}

func TestUtilityScoreDegenerate(t *testing.T) {
	if got := UtilityScore(nil, 10, 0); got != 0 {
		t.Fatalf("empty score = %v", got)
	}
	// Exclusion larger than the trace measures everything.
	states := []TaskState{mkState(StatusCompletedOnTime, 100, 90)}
	if got := UtilityScore(states, 10, 5); math.Abs(got-100) > 1e-12 {
		t.Fatalf("degenerate exclusion score = %v", got)
	}
}

func TestUtilityScoreAtLeastRobustness(t *testing.T) {
	// Realized utility with any grace dominates the strict on-time rate.
	m := testMatrix(t, 1, pmf.Delta(10))
	n := 40
	arr := make([]pmf.Tick, n)
	dl := make([]pmf.Tick, n)
	ex := make([]pmf.Tick, n)
	for i := range arr {
		arr[i] = pmf.Tick(i)
		dl[i] = arr[i] + 60
		ex[i] = 10
	}
	e := New(m, makeTrace(arr, dl, ex), fifoMapper{}, nil, cfgNoExclusion())
	res := e.Run()
	util := UtilityScore(e.TaskStates(), 50, 0)
	if util < res.RobustnessPct-1e-9 {
		t.Fatalf("utility %v < robustness %v", util, res.RobustnessPct)
	}
}

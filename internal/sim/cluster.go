package sim

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/router"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// PartitionMachines deals the matrix's physical machines round-robin into
// n shards: global machine i goes to shard i mod n. Because the flattened
// machine list is grouped by type, the deal spreads every machine type as
// evenly across shards as the counts allow, so each shard remains a
// heterogeneous mini-cluster. It returns the per-shard machine specs
// re-indexed to shard-local positions, plus the local→global index
// translation (global[s][local] is the matrix-wide machine index).
//
// The partition is deterministic, covering and disjoint; with n = 1 it is
// the identity, which is what makes a 1-shard cluster bit-identical to
// the unsharded engine.
func PartitionMachines(m *pet.Matrix, n int) (shards [][]pet.MachineSpec, global [][]int) {
	all := m.Machines()
	if n < 1 || n > len(all) {
		panic(fmt.Sprintf("sim: %d shards for %d machines, want 1..%d", n, len(all), len(all)))
	}
	shards = make([][]pet.MachineSpec, n)
	global = make([][]int, n)
	for i, spec := range all {
		s := i % n
		spec.Index = len(shards[s]) // shard-local position
		shards[s] = append(shards[s], spec)
		global[s] = append(global[s], i)
	}
	return shards, global
}

// PartitionSpecs deals an arbitrary machine subset round-robin into n
// shards — the same deal as PartitionMachines, but over a slice that is
// itself already a partition of the matrix (a multi-process deployment
// gives each server one PartitionMachines part and sub-shards it locally).
// global[i] must be machines[i]'s matrix-wide index; the returned globals
// compose the two translations, so globals[s][local] is still matrix-wide.
func PartitionSpecs(machines []pet.MachineSpec, global []int, n int) (shards [][]pet.MachineSpec, globals [][]int) {
	if n < 1 || n > len(machines) {
		panic(fmt.Sprintf("sim: %d shards for %d machines, want 1..%d", n, len(machines), len(machines)))
	}
	if len(global) != len(machines) {
		panic(fmt.Sprintf("sim: %d machines with %d global indexes", len(machines), len(global)))
	}
	shards = make([][]pet.MachineSpec, n)
	globals = make([][]int, n)
	for i, spec := range machines {
		s := i % n
		spec.Index = len(shards[s]) // shard-local position
		shards[s] = append(shards[s], spec)
		globals[s] = append(globals[s], global[i])
	}
	return shards, globals
}

// NewOpenShard builds an open (incrementally-fed) engine owning only the
// given machine subset of the matrix — one shard of a Cluster. The engine
// runs the full event pipeline of the simulator over its machines alone;
// because a task's completion-time PMF depends only on the queues of the
// machines it may run on, the calculus inside a shard is exactly the
// paper's calculus on a smaller system. Specs are re-indexed to local
// positions; callers that need matrix-wide indexes keep the translation
// (see PartitionMachines).
func NewOpenShard(m *pet.Matrix, machines []pet.MachineSpec, mapper Mapper, dropper core.Policy, cfg Config) *Engine {
	local := make([]pet.MachineSpec, len(machines))
	copy(local, machines)
	for i := range local {
		local[i].Index = i
	}
	e := newEngineWith(m, local, mapper, dropper, cfg)
	e.open = true
	e.initFailures()
	return e
}

// QueuedSuccessProbability returns the chance of success (Eq. 2) the
// engine currently forecasts for an admitted task: the mass of its
// completion-time PMF (Eq. 1 chained over its machine's queue up to the
// task) before its deadline. It is 0 for tasks that are not queued or
// running. Calling it right after Feed is cheap: the mapping event that
// placed the task evaluated the same chain prefixes in the same calculus
// epoch, so the walk is trie lookups, not convolutions.
func (e *Engine) QueuedSuccessProbability(ts *TaskState) float64 {
	if ts.Status != StatusQueued && ts.Status != StatusRunning {
		return 0
	}
	m := e.machines[ts.Machine]
	q := m.coreQueue(e.clock)
	s, start := e.calc.ChainStartCached(m.cache, m.Type(), e.clock, q)
	if start == 1 && m.queue[0] == ts {
		return s.PMF().MassBefore(ts.Task.Deadline)
	}
	for i := start; i < len(q); i++ {
		s = s.AppendTask(q[i])
		if m.queue[i] == ts {
			return s.PMF().MassBefore(ts.Task.Deadline)
		}
	}
	return 0
}

// CoreQueue returns machine i's queue as the calculus' view at the
// engine's current clock (running head marked with its elapsed time) —
// what the dropper and mapper saw at the last event. The slice aliases the
// machine's reusable buffer: valid until the engine next advances. Audit
// tooling (cmd/hcreplay) uses it to re-derive Eq. 1 forecasts offline.
func (e *Engine) CoreQueue(i int) []core.QueueTask {
	return e.machines[i].coreQueue(e.clock)
}

// PublishLoad stores the engine's load gauges into a router view: deferred
// batch size, tasks in machine queues (including running), and open queue
// slots.
func (e *Engine) PublishLoad(v *router.ShardView) {
	inQueues := e.live.Queued + e.live.Running
	v.SetLoad(e.live.Batch, inQueues, e.totalSlots-inQueues)
	v.SetDown(e.LiveMachines() == 0)
}

// ObserveDecision publishes the engine's router-visible state after one
// admission decision: the load gauges, and the task's forecast chance of
// success folded into the per-class robustness EWMA (0 when the task was
// deferred or dropped — the shard could not give the class a timely slot).
func (e *Engine) ObserveDecision(v *router.ShardView, ts *TaskState) {
	v.ObserveAdmission(int(ts.Task.Type), e.QueuedSuccessProbability(ts))
	e.PublishLoad(v)
}

// ShardBuilder supplies one shard's mapper and dropping policy. Shard
// engines must not share stateful components across concurrently-advancing
// loops, so the Cluster constructs each shard through this hook; builders
// typically resolve the same registry specs once per shard.
type ShardBuilder func(shard int) (Mapper, core.Policy, error)

// Cluster is a set of shard-scoped open engines behind a routing policy —
// the sharded form of the admission system. The machines are partitioned
// round-robin (PartitionMachines); every arriving task is routed to one
// shard and admitted through that shard's full pipeline; shard results
// merge into one cluster Result at drain.
//
// The Cluster itself is a single-goroutine driver (Feed/Drain) used by the
// offline simulator and tests; the online service (internal/service) runs
// one single-writer loop per shard instead and uses the Cluster as the
// shared topology: partition, shard engines, router views and the
// lock-free Route helper.
type Cluster struct {
	matrix  *pet.Matrix
	engines []*Engine
	views   []*router.ShardView
	global  [][]int
	policy  router.Policy
	// machines is the number of machines the cluster covers — the whole
	// matrix for NewCluster, one partition's worth for NewClusterOver.
	machines int
}

// NewCluster partitions the matrix's machines into n shards and builds one
// open engine per shard. Per-shard configuration is derived from cfg: the
// boundary-exclusion window is split evenly across shards (each shard
// excludes BoundaryExclusion/n of its first and last tasks, keeping the
// excluded total comparable to the unsharded run), and failure seeds are
// offset by the shard index so shards fail independently. With n = 1 the
// single shard is configured exactly as cfg, machine for machine — a
// 1-shard cluster is bit-identical to the unsharded open engine.
func NewCluster(m *pet.Matrix, n int, pol router.Policy, build ShardBuilder, cfg Config) (*Cluster, error) {
	if m == nil {
		return nil, fmt.Errorf("sim: cluster over nil matrix")
	}
	all := m.Machines()
	global := make([]int, len(all))
	for i := range global {
		global[i] = i
	}
	return NewClusterOver(m, all, global, n, pol, build, cfg, 0)
}

// NewClusterOver builds a cluster over an arbitrary machine subset of the
// matrix — the multi-process form: a shard server owns one
// PartitionMachines part of the matrix and sub-shards it locally, so K
// servers of N shards each cover the matrix exactly once. global[i] is
// machines[i]'s matrix-wide index; seedOffset displaces the per-shard
// failure seeds so independent processes never share a failure stream
// (NewCluster passes 0, keeping single-process clusters bit-identical).
func NewClusterOver(m *pet.Matrix, machines []pet.MachineSpec, global []int, n int, pol router.Policy, build ShardBuilder, cfg Config, seedOffset int64) (*Cluster, error) {
	if m == nil {
		return nil, fmt.Errorf("sim: cluster over nil matrix")
	}
	if n < 1 || n > len(machines) {
		return nil, fmt.Errorf("sim: %d shards for %d machines, want 1..%d", n, len(machines), len(machines))
	}
	if pol == nil && n > 1 {
		return nil, fmt.Errorf("sim: multi-shard cluster without a routing policy")
	}
	parts, globals := PartitionSpecs(machines, global, n)
	cl := &Cluster{
		matrix:   m,
		engines:  make([]*Engine, n),
		views:    make([]*router.ShardView, n),
		global:   globals,
		policy:   pol,
		machines: len(machines),
	}
	for s := 0; s < n; s++ {
		mapper, dropper, err := build(s)
		if err != nil {
			return nil, err
		}
		shardCfg := cfg
		shardCfg.BoundaryExclusion = cfg.BoundaryExclusion / n
		if shardCfg.Failures.Enabled() {
			shardCfg.Failures.Seed += seedOffset + int64(s)
		}
		cl.engines[s] = NewOpenShard(m, parts[s], mapper, dropper, shardCfg)
		cl.views[s] = router.NewShardView(m.NumTaskTypes())
		cl.engines[s].PublishLoad(cl.views[s])
	}
	return cl, nil
}

// NumShards returns the number of shards.
func (cl *Cluster) NumShards() int { return len(cl.engines) }

// NumMachines returns the number of machines the cluster covers (the
// whole matrix unless built over a partition with NewClusterOver).
func (cl *Cluster) NumMachines() int { return cl.machines }

// Shards exposes the shard engines in shard order (read-only for callers
// that do not own the corresponding decision loop).
func (cl *Cluster) Shards() []*Engine { return cl.engines }

// View returns shard s's router-visible state.
func (cl *Cluster) View(s int) *router.ShardView { return cl.views[s] }

// GlobalMachine translates shard s's local machine index to the
// matrix-wide machine index.
func (cl *Cluster) GlobalMachine(s, local int) int { return cl.global[s][local] }

// GlobalMachines returns shard s's machines as matrix-wide indexes, in
// shard-local order.
func (cl *Cluster) GlobalMachines(s int) []int { return cl.global[s] }

// locate translates a matrix-wide machine index into (shard, local).
func (cl *Cluster) locate(global int) (shard, local int, err error) {
	for s, g := range cl.global {
		for l, gi := range g {
			if gi == global {
				return s, l, nil
			}
		}
	}
	return -1, -1, fmt.Errorf("sim: machine %d is not in this cluster", global)
}

// RemoveMachine takes the matrix-wide machine out of its shard's live set
// at time at (advancing that shard's clock there first), handing its
// pending queue back to the shard's batch. The shard's router view is
// republished so routing steers away immediately.
func (cl *Cluster) RemoveMachine(global int, at pmf.Tick, handoff bool) error {
	s, l, err := cl.locate(global)
	if err != nil {
		return err
	}
	eng := cl.engines[s]
	if at > eng.Now() {
		eng.AdvanceTo(at)
	}
	if err := eng.RemoveMachine(l, handoff); err != nil {
		return err
	}
	eng.PublishLoad(cl.views[s])
	return nil
}

// ReviveMachine returns the matrix-wide machine to its shard's live set at
// time at and republishes the shard's router view.
func (cl *Cluster) ReviveMachine(global int, at pmf.Tick) error {
	s, l, err := cl.locate(global)
	if err != nil {
		return err
	}
	eng := cl.engines[s]
	if at > eng.Now() {
		eng.AdvanceTo(at)
	}
	if err := eng.ReviveMachine(l); err != nil {
		return err
	}
	eng.PublishLoad(cl.views[s])
	return nil
}

// ApplyChurn applies one plan event to the cluster. Remove events hand the
// dead machine's queue back to its shard's batch (the offline analogue of
// the service's handoff semantics); Add events are not part of generated
// plans and are rejected here.
func (cl *Cluster) ApplyChurn(ev ChurnEvent) error {
	switch ev.Op {
	case ChurnRemove:
		return cl.RemoveMachine(ev.Machine, ev.At, true)
	case ChurnRevive:
		return cl.ReviveMachine(ev.Machine, ev.At)
	default:
		return fmt.Errorf("sim: churn op %v not supported by the offline cluster driver", ev.Op)
	}
}

// Route picks the shard an arriving task is admitted through. It reads
// only the policy's own state and the shard views' atomics, so any number
// of goroutines may route concurrently with the shard loops.
func (cl *Cluster) Route(class pet.TaskType, arrival, deadline pmf.Tick) int {
	if len(cl.engines) == 1 {
		return 0
	}
	s := cl.policy.Route(router.Task{Class: int(class), Arrival: arrival, Deadline: deadline}, cl.views)
	if s < 0 || s >= len(cl.engines) {
		panic(fmt.Sprintf("sim: router %q returned shard %d of %d", cl.policy.Name(), s, len(cl.engines)))
	}
	return s
}

// Feed routes one arriving task and admits it through the chosen shard's
// pipeline, returning the shard and the task's state (see Engine.Feed for
// how the state encodes the decision). Arrivals must be fed in
// non-decreasing time order. Feed is single-goroutine: it is the offline
// cluster driver; the online service feeds shard engines from per-shard
// loops instead.
func (cl *Cluster) Feed(t *workload.Task) (shard int, ts *TaskState) {
	shard = cl.Route(t.Type, t.Arrival, t.Deadline)
	eng := cl.engines[shard]
	ts = eng.Feed(t)
	eng.ObserveDecision(cl.views[shard], ts)
	return shard, ts
}

// Drain runs every shard's remaining events to completion and merges the
// shard results into the cluster Result. The cluster is not reusable
// afterwards.
func (cl *Cluster) Drain() *Result {
	parts := make([]*Result, len(cl.engines))
	for s, eng := range cl.engines {
		parts[s] = eng.Drain()
	}
	return MergeResults(parts, cl.machines)
}

package sim

import (
	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

// noCompletion marks a machine with no outstanding completion event.
const noCompletion = pmf.Tick(-1)

// Machine is one physical machine with its bounded local queue. The head
// of the queue is the running task while running is true; every other
// entry is pending. Queue capacity includes the running task (§V-A: "up to
// six tasks, including the task that is currently executing").
type Machine struct {
	Spec pet.MachineSpec

	queue   []*TaskState
	running bool
	// completeAt is the absolute completion time of the running task, or
	// noCompletion when idle.
	completeAt pmf.Tick
	// busy accumulates execution time for cost accounting.
	busy pmf.Tick
	// version increments on every queue mutation; it keys the tail
	// completion cache.
	version uint64

	tailVer   uint64
	tailNow   pmf.Tick
	tailPMF   pmf.PMF
	tailValid bool
}

// Type returns the machine's PET column.
func (m *Machine) Type() pet.MachineType { return m.Spec.Type }

// QueueLen returns the number of queued tasks, including the running one.
func (m *Machine) QueueLen() int { return len(m.queue) }

// Queue returns the queue contents (head first). The slice is shared and
// must be treated as read-only by callers.
func (m *Machine) Queue() []*TaskState { return m.queue }

// Running reports whether the machine is currently executing its head.
func (m *Machine) Running() bool { return m.running }

// BusyTicks returns the accumulated execution time.
func (m *Machine) BusyTicks() pmf.Tick { return m.busy }

// firstPending is the queue index of the first non-running task.
func (m *Machine) firstPending() int {
	if m.running {
		return 1
	}
	return 0
}

// coreQueue converts the machine queue into the calculus' view at time
// now.
func (m *Machine) coreQueue(now pmf.Tick) []core.QueueTask {
	out := make([]core.QueueTask, len(m.queue))
	for i, ts := range m.queue {
		out[i] = core.QueueTask{
			Type:     ts.Task.Type,
			Deadline: ts.Task.Deadline,
		}
		if i == 0 && m.running {
			out[i].Running = true
			out[i].Elapsed = now - ts.Start
		}
	}
	return out
}

// tailCompletion returns the completion-time PMF of the machine's last
// queued task (the availability PMF a newly appended task would chain
// from). Results are cached per (queue version, now).
func (m *Machine) tailCompletion(calc *core.Calculus, now pmf.Tick) pmf.PMF {
	if m.tailValid && m.tailVer == m.version && m.tailNow == now {
		return m.tailPMF
	}
	var tail pmf.PMF
	if len(m.queue) == 0 {
		tail = pmf.Delta(now)
	} else {
		cs := calc.CompletionPMFs(m.Type(), now, m.coreQueue(now))
		tail = cs[len(cs)-1]
	}
	m.tailVer, m.tailNow, m.tailPMF, m.tailValid = m.version, now, tail, true
	return tail
}

// removeAt deletes the queue entry at index i and bumps the version.
func (m *Machine) removeAt(i int) *TaskState {
	ts := m.queue[i]
	m.queue = append(m.queue[:i], m.queue[i+1:]...)
	m.version++
	return ts
}

// push appends a task to the queue tail and bumps the version.
func (m *Machine) push(ts *TaskState) {
	m.queue = append(m.queue, ts)
	m.version++
}

package sim

import (
	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
)

// noCompletion marks a machine with no outstanding completion event.
const noCompletion = pmf.Tick(-1)

// Machine is one physical machine with its bounded local queue. The head
// of the queue is the running task while running is true; every other
// entry is pending. Queue capacity includes the running task (§V-A: "up to
// six tasks, including the task that is currently executing").
type Machine struct {
	Spec pet.MachineSpec

	queue   []*TaskState
	running bool
	// completeAt is the absolute completion time of the running task, or
	// noCompletion when idle.
	completeAt pmf.Tick
	// busy accumulates execution time for cost accounting.
	busy pmf.Tick
	// version increments on every queue mutation; it keys the tail
	// completion cache.
	version uint64

	// cache is the machine's persistent chain cache: its availability root
	// and Eq. 1 chain trie survive mapping events until the root signature
	// drifts (see core.ChainCache). Every chain evaluation for this
	// machine — dropper decisions, mapper candidates, audit walks — runs
	// through it.
	cache *core.ChainCache

	// Tail completion-chain cache: the memoized chain state of the last
	// queued task, valid while (cache generation, version, now) all match.
	// The chain lives in the persistent cache, so it survives recycles; a
	// cache reset bumps the generation and drops it.
	tailVer   uint64
	tailNow   pmf.Tick
	tailGen   uint64
	tailState core.ChainState
	tailValid bool

	// Proactive-decision memo: the last dropper consultation returned "no
	// drops", valid while (cache generation, root signature, queue
	// version) all hold and the policy is a core.StableDecider. A stable
	// policy re-deciding over bitwise-unchanged inputs reproduces the
	// identical empty decision, so the engine skips the walk entirely.
	decGen  uint64
	decVer  uint64
	decNone bool
	// qbuf is the reusable backing of coreQueue.
	qbuf []core.QueueTask
}

// Type returns the machine's PET column.
func (m *Machine) Type() pet.MachineType { return m.Spec.Type }

// QueueLen returns the number of queued tasks, including the running one.
func (m *Machine) QueueLen() int { return len(m.queue) }

// Queue returns the queue contents (head first). The slice is shared and
// must be treated as read-only by callers.
func (m *Machine) Queue() []*TaskState { return m.queue }

// Running reports whether the machine is currently executing its head.
func (m *Machine) Running() bool { return m.running }

// BusyTicks returns the accumulated execution time.
func (m *Machine) BusyTicks() pmf.Tick { return m.busy }

// firstPending is the queue index of the first non-running task.
func (m *Machine) firstPending() int {
	if m.running {
		return 1
	}
	return 0
}

// coreQueue converts the machine queue into the calculus' view at time
// now. The returned slice is machine-owned scratch, overwritten by the
// next call for this machine; consumers use it within one decision.
func (m *Machine) coreQueue(now pmf.Tick) []core.QueueTask {
	out := m.qbuf[:0]
	for i, ts := range m.queue {
		qt := core.QueueTask{
			Type:     ts.Task.Type,
			Deadline: ts.Task.Deadline,
		}
		if i == 0 && m.running {
			qt.Running = true
			qt.Elapsed = now - ts.Start
		}
		out = append(out, qt)
	}
	m.qbuf = out
	return out
}

// tailChain returns the memoized chain state of the machine's last queued
// task (the availability state a newly appended task would chain from; for
// an empty queue, the machine-free-now root). The state is cached per
// (cache generation, queue version, now): same queue and same clock imply
// the same root signature, so a matching memo is valid even across
// recycles without revalidating the persistent cache. The chain runs
// through that cache, so candidate completions branching off the tail are
// memoized per (task type, deadline) across events, not just within one.
func (m *Machine) tailChain(calc *core.Calculus, now pmf.Tick) core.ChainState {
	if m.tailValid && m.tailGen == m.cache.Gen() && m.tailVer == m.version && m.tailNow == now {
		return m.tailState
	}
	q := m.coreQueue(now)
	s, start := calc.ChainStartCached(m.cache, m.Type(), now, q)
	for i := start; i < len(q); i++ {
		s = s.AppendTask(q[i])
	}
	m.tailState = s
	m.tailGen, m.tailVer, m.tailNow, m.tailValid = m.cache.Gen(), m.version, now, true
	return s
}

// removeAt deletes the queue entry at index i and bumps the version.
func (m *Machine) removeAt(i int) *TaskState {
	ts := m.queue[i]
	m.queue = append(m.queue[:i], m.queue[i+1:]...)
	m.version++
	return ts
}

// push appends a task to the queue tail and bumps the version.
func (m *Machine) push(ts *TaskState) {
	m.queue = append(m.queue, ts)
	m.version++
}

package sim

import (
	"fmt"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/stats"
)

// Dynamic membership: an open engine's machine set can change between
// events. RemoveMachine takes a machine out of the live set (killing its
// running task and either handing its pending queue back to the batch or
// force-dropping it), ReviveMachine brings it back, and AddMachine grows
// the set with a new machine of an existing type. Each operation executes
// at the engine's current clock and runs the full mapping pipeline, so the
// decision stream stays deterministic: replaying the same arrivals and the
// same membership operations at the same points reproduces the same
// decisions. A never-churned engine carries no membership state at all —
// its snapshots and decisions are byte-identical to the pre-membership
// engine.

// removedAt reports whether machine i is currently out of the live set.
func (e *Engine) removedAt(i int) bool {
	return e.removed != nil && e.removed[i]
}

// LiveMachines returns the number of machines currently in the live set.
// A failed-but-repairing machine still counts as live; only RemoveMachine
// shrinks this.
func (e *Engine) LiveMachines() int {
	n := len(e.machines)
	for _, r := range e.removed {
		if r {
			n--
		}
	}
	return n
}

// RemovedMachines returns the indexes of removed machines, ascending
// (nil when membership never shrank).
func (e *Engine) RemovedMachines() []int {
	var out []int
	for i, r := range e.removed {
		if r {
			out = append(out, i)
		}
	}
	return out
}

// AddedMachineTypes returns the machine types of runtime-added machines in
// order of addition (nil when membership never grew).
func (e *Engine) AddedMachineTypes() []int {
	return append([]int(nil), e.addedTypes...)
}

// RemoveMachine takes machine i out of the live set at the current clock.
// Its running task dies (StatusFailed, like a machine failure); pending
// queue entries are handed back to the batch for remapping when handoff is
// true, or force-dropped as failed otherwise. The machine's chain-state
// cache is invalidated and the mapping pipeline runs so handed-off tasks
// are reconsidered immediately. Only open engines support membership.
func (e *Engine) RemoveMachine(i int, handoff bool) error {
	if !e.open {
		return fmt.Errorf("sim: RemoveMachine on a trace-driven engine")
	}
	if i < 0 || i >= len(e.machines) {
		return fmt.Errorf("sim: RemoveMachine(%d) of %d machines", i, len(e.machines))
	}
	if e.removedAt(i) {
		return fmt.Errorf("sim: machine %d already removed", i)
	}
	e.detachMachine(i, handoff)
	e.mappingEvent(true)
	return nil
}

// detachMachine is RemoveMachine without the mapping pipeline.
func (e *Engine) detachMachine(i int, handoff bool) {
	m := e.machines[i]
	if m.running {
		ts := m.queue[0]
		e.transition(ts, StatusFailed)
		ts.Finish = e.clock
		m.busy += e.clock - ts.Start // the wasted time is still billed
		m.running = false
		m.completeAt = noCompletion
		m.removeAt(0)
	}
	for len(m.queue) > 0 {
		ts := m.removeAt(0)
		if handoff {
			e.transition(ts, StatusBatch)
			ts.Machine = -1
			e.batch = append(e.batch, ts)
		} else {
			e.transition(ts, StatusFailed)
			ts.Finish = e.clock
		}
	}
	m.tailValid = false
	m.cache.Invalidate(core.InvalidateChurn)
	if e.removed == nil {
		e.removed = make([]bool, len(e.machines))
	}
	e.removed[i] = true
	e.totalSlots -= e.cfg.QueueCap
}

// ReviveMachine returns removed machine i to the live set at the current
// clock with an empty queue. If failure injection is on, any failure
// schedule that came due while the machine was out is stale (it would move
// the clock backwards); the process is re-armed from now.
func (e *Engine) ReviveMachine(i int) error {
	if !e.open {
		return fmt.Errorf("sim: ReviveMachine on a trace-driven engine")
	}
	if i < 0 || i >= len(e.machines) {
		return fmt.Errorf("sim: ReviveMachine(%d) of %d machines", i, len(e.machines))
	}
	if !e.removedAt(i) {
		return fmt.Errorf("sim: machine %d is not removed", i)
	}
	e.removed[i] = false
	e.totalSlots += e.cfg.QueueCap
	e.machines[i].cache.Invalidate(core.InvalidateChurn)
	e.machines[i].tailValid = false
	if e.failures != nil {
		fs := &e.failures[i]
		if fs.repairAt != noCompletion || (fs.nextFailAt != noCompletion && fs.nextFailAt <= e.clock) {
			fs.repairAt = noCompletion
			fs.nextFailAt = e.clock + 1 + pmf.Tick(fs.rng.Exponential(float64(e.cfg.Failures.MTBF)))
			fs.draws++
		}
	}
	e.mappingEvent(true)
	return nil
}

// AddMachine grows the live set with a new machine of type mt at the
// current clock and returns its index. Pricing is cloned from an existing
// machine of the same type (a type with no reference machine cannot be
// added). The new machine starts idle with an empty queue; the mapping
// pipeline runs so deferred batch tasks can claim its slots immediately.
func (e *Engine) AddMachine(mt pet.MachineType) (int, error) {
	if !e.open {
		return -1, fmt.Errorf("sim: AddMachine on a trace-driven engine")
	}
	i, err := e.attachMachine(mt)
	if err != nil {
		return -1, err
	}
	e.mappingEvent(true)
	return i, nil
}

// attachMachine is AddMachine without the mapping pipeline.
func (e *Engine) attachMachine(mt pet.MachineType) (int, error) {
	if int(mt) < 0 || int(mt) >= e.pet.NumMachineTypes() {
		return -1, fmt.Errorf("sim: AddMachine with machine type %d of %d", mt, e.pet.NumMachineTypes())
	}
	price := -1.0
	for _, m := range e.machines {
		if m.Spec.Type == mt {
			price = m.Spec.PriceHour
			break
		}
	}
	if price < 0 {
		for _, s := range e.pet.Machines() {
			if s.Type == mt {
				price = s.PriceHour
				break
			}
		}
	}
	if price < 0 {
		return -1, fmt.Errorf("sim: no machine of type %d to derive pricing from", mt)
	}
	i := len(e.machines)
	spec := pet.MachineSpec{
		Index:     i,
		Type:      mt,
		Name:      fmt.Sprintf("added-%d#%d", mt, len(e.addedTypes)),
		PriceHour: price,
	}
	e.machines = append(e.machines, &Machine{Spec: spec, completeAt: noCompletion, cache: e.calc.NewChainCache()})
	if e.removed != nil {
		e.removed = append(e.removed, false)
	}
	if e.failures != nil {
		e.failures = append(e.failures, e.newFailureCursor(i))
	}
	e.addedTypes = append(e.addedTypes, int(mt))
	e.totalSlots += e.cfg.QueueCap
	return i, nil
}

// newFailureCursor seeds the failure process of a runtime-added machine.
// The stream is derived from (failure seed, machine index) alone, so a
// restored engine that re-attaches the same machines re-creates the
// identical process before replaying its draw count.
func (e *Engine) newFailureCursor(i int) machineFailureState {
	rng := stats.NewRNG(e.cfg.Failures.Seed + 0x5DEECE66D*int64(i+1))
	return machineFailureState{
		rng:        rng,
		nextFailAt: e.clock + 1 + pmf.Tick(rng.Exponential(float64(e.cfg.Failures.MTBF))),
		repairAt:   noCompletion,
		draws:      1,
	}
}

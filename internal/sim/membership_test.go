package sim

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/router"
)

// membershipEngine builds a 3-machine open engine with a few tasks fed so
// queues are non-empty when membership changes.
func membershipEngine(t *testing.T, feed int) *Engine {
	t.Helper()
	m := testMatrix(t, 3, pmf.Delta(10))
	e := NewOpen(m, fifoMapper{}, nil, cfgNoExclusion())
	tasks := randomOpenTasks(feed, 21)
	for i := range tasks {
		e.Feed(&tasks[i])
	}
	return e
}

func TestRemoveMachineHandoff(t *testing.T) {
	e := membershipEngine(t, 40)
	before := e.LiveCounts()
	if before.Queued == 0 {
		t.Fatal("setup: no queued work to hand off")
	}
	if err := e.RemoveMachine(1, true); err != nil {
		t.Fatal(err)
	}
	if got := e.LiveMachines(); got != 2 {
		t.Fatalf("LiveMachines = %d after remove, want 2", got)
	}
	if got := e.RemovedMachines(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("RemovedMachines = %v, want [1]", got)
	}
	// The removed machine's queue is empty; nothing on it survived.
	if n := len(e.Machines()[1].Queue()); n != 0 {
		t.Fatalf("removed machine still holds %d queue entries", n)
	}
	// Handoff semantics: no task silently disappears — every previously
	// queued task is failed (the running one), still queued elsewhere
	// (remapped), deferred back to the batch, or terminal.
	after := e.recountLive()
	total := after.Queued + after.Batch + after.Running
	if total == 0 && before.Queued+before.Batch > 1 {
		t.Fatalf("handoff lost all pending work: before %+v, after %+v", before, after)
	}
	if after.Failed == 0 && before.Running > 0 {
		t.Fatalf("running task on removed machine not failed: %+v", after)
	}

	// Double-remove and out-of-range are errors.
	if err := e.RemoveMachine(1, true); err == nil {
		t.Fatal("second remove of machine 1 accepted")
	}
	if err := e.RemoveMachine(99, true); err == nil {
		t.Fatal("remove of machine 99 accepted")
	}
}

func TestRemoveMachineForceDrop(t *testing.T) {
	e := membershipEngine(t, 40)
	before := e.recountLive()
	if err := e.RemoveMachine(0, false); err != nil {
		t.Fatal(err)
	}
	after := e.recountLive()
	// Force-drop: the machine's pending queue died with it. Failures can
	// only grow, and nothing was handed back to the batch beyond what the
	// mapping pipeline re-deferred.
	if after.Failed <= before.Failed {
		t.Fatalf("force-drop removed a loaded machine but Failed stayed %d → %d", before.Failed, after.Failed)
	}
}

func TestReviveMachine(t *testing.T) {
	e := membershipEngine(t, 20)
	if err := e.ReviveMachine(2); err == nil {
		t.Fatal("revive of a live machine accepted")
	}
	if err := e.RemoveMachine(2, true); err != nil {
		t.Fatal(err)
	}
	if err := e.ReviveMachine(2); err != nil {
		t.Fatal(err)
	}
	if got := e.LiveMachines(); got != 3 {
		t.Fatalf("LiveMachines = %d after revive, want 3", got)
	}
	if got := e.RemovedMachines(); got != nil {
		t.Fatalf("RemovedMachines = %v after revive, want nil", got)
	}
	// The revived machine is usable: keep feeding and drain cleanly.
	tasks := randomOpenTasks(20, 31)
	for i := range tasks {
		e.Feed(&tasks[i])
	}
	if res := e.Drain(); res.Total == 0 {
		t.Fatal("drain after revive accounted no tasks")
	}
}

func TestAddMachine(t *testing.T) {
	e := membershipEngine(t, 10)
	i, err := e.AddMachine(0)
	if err != nil {
		t.Fatal(err)
	}
	if i != 3 {
		t.Fatalf("AddMachine index = %d, want 3", i)
	}
	spec := e.Machines()[i].Spec
	if spec.Name != "added-0#0" || int(spec.Type) != 0 {
		t.Fatalf("added machine spec = %+v", spec)
	}
	if spec.PriceHour != e.Machines()[0].Spec.PriceHour {
		t.Fatalf("added machine price %v, want cloned %v", spec.PriceHour, e.Machines()[0].Spec.PriceHour)
	}
	if got := e.AddedMachineTypes(); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("AddedMachineTypes = %v, want [0]", got)
	}
	if got := e.LiveMachines(); got != 4 {
		t.Fatalf("LiveMachines = %d, want 4", got)
	}
	if _, err := e.AddMachine(7); err == nil {
		t.Fatal("AddMachine with unknown type accepted")
	}
}

// TestMembershipOnTraceDrivenEngine: the classic engine's determinism
// contract excludes runtime membership; the operations must refuse.
func TestMembershipOnTraceDrivenEngine(t *testing.T) {
	m := testMatrix(t, 2, pmf.Delta(10))
	eng := New(m, makeTrace([]pmf.Tick{0}, []pmf.Tick{50}, []pmf.Tick{10}), fifoMapper{}, nil, cfgNoExclusion())
	if err := eng.RemoveMachine(0, true); err == nil {
		t.Fatal("RemoveMachine on trace-driven engine accepted")
	}
	if err := eng.ReviveMachine(0); err == nil {
		t.Fatal("ReviveMachine on trace-driven engine accepted")
	}
	if _, err := eng.AddMachine(0); err == nil {
		t.Fatal("AddMachine on trace-driven engine accepted")
	}
}

// TestMembershipSnapshotRoundTrip extends the replay property to churned
// engines: snapshot a live engine mid-churn (machine removed, machine
// added), restore into a fresh replica, and require identical decisions,
// snapshots and drained results from there on.
func TestMembershipSnapshotRoundTrip(t *testing.T) {
	cfg := cfgNoExclusion()
	tasks := randomOpenTasks(120, 11)
	live, replica := snapshotEngines(t, cfg)
	for i := 0; i < 50; i++ {
		live.Feed(&tasks[i])
	}
	if err := live.RemoveMachine(1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := live.AddMachine(0); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 60; i++ {
		live.Feed(&tasks[i])
	}

	snap := live.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded EngineSnapshot
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if err := replica.RestoreSnapshot(&decoded); err != nil {
		t.Fatal(err)
	}
	if got, want := replica.LiveMachines(), live.LiveMachines(); got != want {
		t.Fatalf("restored LiveMachines = %d, want %d", got, want)
	}
	if got, want := replica.RemovedMachines(), live.RemovedMachines(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored RemovedMachines = %v, want %v", got, want)
	}

	for i := 60; i < len(tasks); i++ {
		a, b := live.Feed(&tasks[i]), replica.Feed(&tasks[i])
		if a.Status != b.Status || a.Machine != b.Machine {
			t.Fatalf("task %d diverged post-restore: live %v/m%d, replica %v/m%d",
				i, a.Status, a.Machine, b.Status, b.Machine)
		}
	}
	// A revive after restore behaves identically too.
	if err := live.ReviveMachine(1); err != nil {
		t.Fatal(err)
	}
	if err := replica.ReviveMachine(1); err != nil {
		t.Fatal(err)
	}
	if got, want := replica.Snapshot(), live.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatal("final snapshots diverged")
	}
	if got, want := replica.Drain(), live.Drain(); !reflect.DeepEqual(got, want) {
		t.Fatalf("drained results diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestUnchurnedSnapshotOmitsMembership pins the zero-cost contract: an
// engine that never saw a membership operation serializes no membership
// fields at all, so pre-membership logs and snapshots stay byte-compatible.
func TestUnchurnedSnapshotOmitsMembership(t *testing.T) {
	e := membershipEngine(t, 20)
	blob, err := json.Marshal(e.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"removed_machines", "added_machines"} {
		if containsKey(blob, key) {
			t.Fatalf("unchurned snapshot carries %q: %s", key, blob)
		}
	}
}

func containsKey(blob []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

func TestGenerateChurnProperties(t *testing.T) {
	const machines = 4
	const window = pmf.Tick(20000)
	cfg := ChurnConfig{MeanInterval: 500, MeanDown: 300, Seed: 7}

	a := GenerateChurn(machines, window, cfg)
	b := GenerateChurn(machines, window, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("churn plan is not deterministic for a fixed seed")
	}
	if len(a) == 0 {
		t.Fatal("plan empty for an aggressive config")
	}

	down := make(map[int]bool)
	last := pmf.Tick(0)
	for _, ev := range a {
		if ev.At < last {
			t.Fatalf("plan out of order at %+v", ev)
		}
		last = ev.At
		switch ev.Op {
		case ChurnRemove:
			if down[ev.Machine] {
				t.Fatalf("machine %d removed twice without revive", ev.Machine)
			}
			down[ev.Machine] = true
			if len(down) >= machines {
				t.Fatal("plan killed the last live machine")
			}
		case ChurnRevive:
			if !down[ev.Machine] {
				t.Fatalf("machine %d revived while live", ev.Machine)
			}
			delete(down, ev.Machine)
		default:
			t.Fatalf("unexpected op %v in generated plan", ev.Op)
		}
		if ev.At >= window {
			t.Fatalf("event at %d past window %d", ev.At, window)
		}
	}

	if got := GenerateChurn(machines, window, ChurnConfig{}); got != nil {
		t.Fatalf("disabled config generated %d events", len(got))
	}
	if got := GenerateChurn(1, window, cfg); got != nil {
		t.Fatal("single-machine system generated churn")
	}
}

// TestClusterChurn drives a generated plan through the cluster driver:
// every event applies cleanly, the run is reproducible, and an Add event
// (not part of generated plans) is rejected.
func TestClusterChurn(t *testing.T) {
	m, tr := clusterTestSystem(t, 400, 9)
	cfg := Config{QueueCap: 6}
	plan := GenerateChurn(len(m.Machines()), tr.Tasks[len(tr.Tasks)-1].Arrival, ChurnConfig{MeanInterval: 300, MeanDown: 200, Seed: 5})
	if len(plan) == 0 {
		t.Fatal("setup: empty plan")
	}

	run := func() *Result {
		cl, err := NewCluster(m, 2, router.NewRoundRobin(), pamHeuristic(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		next := 0
		for i := range tr.Tasks {
			for next < len(plan) && plan[next].At <= tr.Tasks[i].Arrival {
				if err := cl.ApplyChurn(plan[next]); err != nil {
					t.Fatalf("event %d (%+v): %v", next, plan[next], err)
				}
				next++
			}
			cl.Feed(&tr.Tasks[i])
		}
		for ; next < len(plan); next++ {
			if err := cl.ApplyChurn(plan[next]); err != nil {
				t.Fatalf("trailing event %d: %v", next, err)
			}
		}
		return cl.Drain()
	}
	r1, r2 := run(), run()
	if *r1 != *r2 {
		t.Fatalf("churned cluster not reproducible:\n %+v\n %+v", r1, r2)
	}
	if r1.Total != len(tr.Tasks) {
		t.Fatalf("accounted %d tasks, want %d", r1.Total, len(tr.Tasks))
	}

	cl, err := NewCluster(m, 2, router.NewRoundRobin(), pamHeuristic(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.ApplyChurn(ChurnEvent{Op: ChurnAdd, Type: 0}); err == nil {
		t.Fatal("cluster driver accepted an Add churn event")
	}
}

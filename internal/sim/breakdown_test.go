package sim

import (
	"bytes"
	"strings"
	"testing"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/workload"
)

func TestBreakdownConservation(t *testing.T) {
	m := pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 150, BinsPerPMF: 15})
	tr := workload.Generate(m, workload.Config{TotalTasks: 500, Window: 2500, GammaSlack: 2}, 31)
	e := New(m, tr, fifoMapper{}, core.NewHeuristic(), DefaultConfig())
	res := e.Run()

	types, machines := e.Breakdown()
	if len(types) != m.NumTaskTypes() {
		t.Fatalf("type breakdowns = %d", len(types))
	}
	if len(machines) != len(m.Machines()) {
		t.Fatalf("machine breakdowns = %d", len(machines))
	}

	var total, onTime, started, mOnTime int
	for _, tb := range types {
		total += tb.Total
		onTime += tb.OnTime
		if sum := tb.OnTime + tb.Late + tb.DroppedReactive + tb.DroppedProactive + tb.Failed; sum != tb.Total {
			t.Fatalf("type %s not conserved: %d vs %d", tb.Name, sum, tb.Total)
		}
	}
	if total != res.Total || onTime != res.OnTime {
		t.Fatalf("type totals %d/%d vs result %d/%d", total, onTime, res.Total, res.OnTime)
	}
	for _, mb := range machines {
		started += mb.Started
		mOnTime += mb.OnTime
		if mb.OnTime > mb.Started {
			t.Fatalf("machine %s ontime %d > started %d", mb.Name, mb.OnTime, mb.Started)
		}
	}
	// Every executed task started on exactly one machine.
	if started != res.OnTime+res.Late+res.Failed {
		t.Fatalf("started %d vs executed %d", started, res.OnTime+res.Late+res.Failed)
	}
	if mOnTime != res.OnTime {
		t.Fatalf("machine on-time %d vs %d", mOnTime, res.OnTime)
	}
}

func TestBreakdownRobustnessPct(t *testing.T) {
	tb := TypeBreakdown{Total: 4, OnTime: 1}
	if got := tb.RobustnessPct(); got != 25 {
		t.Fatalf("RobustnessPct = %v", got)
	}
	if got := (TypeBreakdown{}).RobustnessPct(); got != 0 {
		t.Fatalf("empty RobustnessPct = %v", got)
	}
}

func TestFprintBreakdown(t *testing.T) {
	m := pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 100, BinsPerPMF: 10})
	tr := workload.Generate(m, workload.Config{TotalTasks: 100, Window: 1000, GammaSlack: 2}, 32)
	e := New(m, tr, fifoMapper{}, nil, DefaultConfig())
	e.Run()
	types, machines := e.Breakdown()
	var b bytes.Buffer
	FprintBreakdown(&b, types, machines)
	out := b.String()
	for _, want := range []string{"per task type:", "per machine:", "reduce-resolution", "GPU"} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown output missing %q:\n%s", want, out)
		}
	}
}

package stats

import (
	"fmt"
	"math"
)

// PairedDiff summarizes the element-wise differences x[i] − y[i] as a
// mean ± 95% CI. This is the paired-difference analysis: when the two
// series come from trials run on identical traces (the comparison
// discipline of the paper's §V), the trial-to-trial workload noise is
// common to both series and cancels in the differences, so the CI on the
// mean difference is typically much tighter than the CI either series
// carries on its own mean.
func PairedDiff(x, y []float64) (Summary, error) {
	if len(x) != len(y) {
		return Summary{}, fmt.Errorf("stats: paired series of unequal length (%d vs %d)", len(x), len(y))
	}
	d := make([]float64, len(x))
	for i := range x {
		d[i] = x[i] - y[i]
	}
	return Summarize(d), nil
}

// IndependentDiff summarizes the difference of two independent sample
// means, x − y, with a Welch-approximate 95% CI — the analysis forced on a
// reader who only has the two per-cell summaries. It exists as the
// comparison point for PairedDiff: on positively correlated (paired) data
// the paired CI is no wider, usually far narrower.
func IndependentDiff(x, y Summary) Summary {
	out := Summary{N: x.N, Mean: x.Mean - y.Mean}
	if y.N < out.N {
		out.N = y.N
	}
	if x.N < 2 || y.N < 2 {
		return out
	}
	vx := x.StdDev * x.StdDev / float64(x.N)
	vy := y.StdDev * y.StdDev / float64(y.N)
	se := math.Sqrt(vx + vy)
	out.StdDev = se
	if se == 0 {
		return out
	}
	// Welch–Satterthwaite effective degrees of freedom.
	df := (vx + vy) * (vx + vy) / (vx*vx/float64(x.N-1) + vy*vy/float64(y.N-1))
	out.CI95 = tCritical95(int(df)) * se
	return out
}

// Package stats provides the random-number and descriptive-statistics
// substrate for the simulator: seeded streams, Gamma and exponential
// sampling (used to synthesize execution times per §V-A of the paper),
// Poisson arrival processes, and mean/confidence-interval summaries for the
// experiment harness.
package stats

import (
	"math"
	"math/rand"
)

// RNG is a seeded random stream. It wraps math/rand.Rand with the samplers
// the workload generators need. RNG is not safe for concurrent use; give
// each trial its own stream (see Split).
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child stream. The derivation mixes the
// parent's state with a fixed odd multiplier so that consecutive splits do
// not correlate with the parent's own output sequence.
func (g *RNG) Split() *RNG {
	s := uint64(g.r.Int63())
	return NewRNG(int64(s*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D))
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// UniformRange returns a uniform sample in [lo, hi).
func (g *RNG) UniformRange(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Exponential returns a sample from the exponential distribution with the
// given mean (mean = 1/rate). It panics if mean <= 0.
func (g *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("stats: exponential with non-positive mean")
	}
	return g.r.ExpFloat64() * mean
}

// Gamma returns a sample from the Gamma distribution with the given shape
// (k) and scale (θ); mean = k·θ, variance = k·θ². It uses the
// Marsaglia–Tsang squeeze method, with the standard shape<1 boost. It
// panics if shape or scale is non-positive.
func (g *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: gamma with non-positive shape or scale")
	}
	if shape < 1 {
		// Boost: Gamma(k) = Gamma(k+1) · U^{1/k}.
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = g.r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// GammaWithMean returns a Gamma sample with the given mean and scale θ
// (shape derived as mean/θ). This is the parameterization of §V-A: "the
// mean of the Gamma distribution was determined based on execution time
// results … the scale parameter … was chosen uniformly from the range
// [1,20]".
func (g *RNG) GammaWithMean(mean, scale float64) float64 {
	return g.Gamma(mean/scale, scale)
}

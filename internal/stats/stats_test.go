package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield same stream")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	g := NewRNG(5)
	c1 := g.Split()
	c2 := g.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collide on %d/100 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := g.UniformRange(1, 20)
		if v < 1 || v >= 20 {
			t.Fatalf("UniformRange out of bounds: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(8)
	const n = 200_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exponential(50)
	}
	mean := sum / n
	if math.Abs(mean-50) > 1 {
		t.Fatalf("exponential mean = %v, want ≈50", mean)
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestGammaMoments(t *testing.T) {
	g := NewRNG(9)
	cases := []struct{ shape, scale float64 }{
		{0.5, 10}, {1, 5}, {2, 3}, {7.5, 2}, {50, 0.5},
	}
	const n = 100_000
	for _, c := range cases {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := g.Gamma(c.shape, c.scale)
			if v <= 0 {
				t.Fatalf("gamma(%v,%v) produced non-positive sample %v", c.shape, c.scale, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.03*wantMean+0.05 {
			t.Errorf("gamma(%v,%v) mean = %v, want ≈%v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.10*wantVar+0.1 {
			t.Errorf("gamma(%v,%v) var = %v, want ≈%v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaWithMean(t *testing.T) {
	g := NewRNG(10)
	const n = 100_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.GammaWithMean(120, 15)
	}
	mean := sum / n
	if math.Abs(mean-120) > 2 {
		t.Fatalf("GammaWithMean mean = %v, want ≈120", mean)
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewRNG(1).Gamma(0, 1) },
		func() { NewRNG(1).Gamma(1, 0) },
		func() { NewRNG(1).Gamma(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	// Sample stddev with n−1: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev, want)
	}
	wantCI := tCritical95(7) * want / math.Sqrt(8)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", s.CI95, wantCI)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CI95 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s := Summarize([]float64{3.5}); s.N != 1 || s.Mean != 3.5 || s.CI95 != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeConstantSeries(t *testing.T) {
	s := Summarize([]float64{4, 4, 4, 4})
	if s.StdDev != 0 || s.CI95 != 0 {
		t.Fatalf("constant series: %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Mean: 42.1234, CI95: 1.567}
	if got, want := s.String(), "42.12 ± 1.57"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{{1, 12.706}, {29, 2.045}, {30, 2.042}, {120, 1.980}, {1000, 1.960}, {0, 0}}
	for _, c := range cases {
		if got := tCritical95(c.df); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("t(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// Interpolated region must be monotone decreasing.
	prev := tCritical95(30)
	for df := 31; df <= 120; df++ {
		cur := tCritical95(df)
		if cur > prev+1e-12 {
			t.Fatalf("t not monotone at df=%d: %v > %v", df, cur, prev)
		}
		prev = cur
	}
}

func TestSummarizeCIShrinksWithN(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		g := NewRNG(seed)
		small := make([]float64, 5)
		big := make([]float64, 50)
		for i := range big {
			v := g.NormFloat64()
			big[i] = v
			if i < 5 {
				small[i] = v
			}
		}
		// Not a strict law for arbitrary draws, but holds overwhelmingly;
		// use a generous factor to keep the property deterministic enough.
		return Summarize(big).CI95 < Summarize(small).CI95*3
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairedDiffHandComputed(t *testing.T) {
	// d = [0.5, 1.0, 1.5]: mean 1, sd 0.5, CI = t(2)·0.5/√3.
	s, err := PairedDiff([]float64{1, 2, 3}, []float64{0.5, 1, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || math.Abs(s.Mean-1) > 1e-12 {
		t.Fatalf("paired diff = %+v", s)
	}
	if math.Abs(s.StdDev-0.5) > 1e-12 {
		t.Fatalf("StdDev = %v, want 0.5", s.StdDev)
	}
	wantCI := 4.303 * 0.5 / math.Sqrt(3)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", s.CI95, wantCI)
	}
}

func TestPairedDiffCancelsCommonNoise(t *testing.T) {
	// Perfectly correlated series with a constant offset: the differences
	// are exactly the offset, so the paired CI collapses to zero while
	// each series alone carries a wide CI.
	x := []float64{10, 40, 20, 70, 30}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = v - 7
	}
	d, err := PairedDiff(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean != 7 || d.StdDev != 0 || d.CI95 != 0 {
		t.Fatalf("paired diff of offset series = %+v, want exactly 7 ± 0", d)
	}
	if indep := IndependentDiff(Summarize(x), Summarize(y)); indep.CI95 <= 0 {
		t.Fatalf("independent CI = %v, want > 0", indep.CI95)
	}
}

func TestPairedDiffLengthMismatch(t *testing.T) {
	if _, err := PairedDiff([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestPairedDiffDegenerate(t *testing.T) {
	s, err := PairedDiff(nil, nil)
	if err != nil || s.N != 0 {
		t.Fatalf("empty paired diff = %+v, %v", s, err)
	}
	s, err = PairedDiff([]float64{4}, []float64{1})
	if err != nil || s.N != 1 || s.Mean != 3 || s.CI95 != 0 {
		t.Fatalf("single-pair diff = %+v, %v", s, err)
	}
}

func TestIndependentDiffHandComputed(t *testing.T) {
	// Equal variances and sizes: Welch df = 2n−2 = 18, se = √(4/10+4/10).
	x := Summary{N: 10, Mean: 5, StdDev: 2}
	y := Summary{N: 10, Mean: 3, StdDev: 2}
	d := IndependentDiff(x, y)
	if d.N != 10 || math.Abs(d.Mean-2) > 1e-12 {
		t.Fatalf("independent diff = %+v", d)
	}
	se := math.Sqrt(0.8)
	if math.Abs(d.StdDev-se) > 1e-12 {
		t.Fatalf("se = %v, want %v", d.StdDev, se)
	}
	wantCI := 2.101 * se // t(18)
	if math.Abs(d.CI95-wantCI) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", d.CI95, wantCI)
	}
}

func TestIndependentDiffDegenerate(t *testing.T) {
	// Too few observations on either side: mean only, zero CI.
	d := IndependentDiff(Summary{N: 1, Mean: 4}, Summary{N: 30, Mean: 1, StdDev: 2})
	if d.N != 1 || d.Mean != 3 || d.CI95 != 0 {
		t.Fatalf("degenerate independent diff = %+v", d)
	}
	// Zero variance on both sides: exact difference, zero CI.
	d = IndependentDiff(Summary{N: 5, Mean: 4}, Summary{N: 5, Mean: 1})
	if d.Mean != 3 || d.CI95 != 0 {
		t.Fatalf("zero-variance independent diff = %+v", d)
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Fatal("MeanOf(nil) != 0")
	}
	if got := MeanOf([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("MeanOf = %v", got)
	}
}

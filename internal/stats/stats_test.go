package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must yield same stream")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	g := NewRNG(5)
	c1 := g.Split()
	c2 := g.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Float64() == c2.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collide on %d/100 draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := g.UniformRange(1, 20)
		if v < 1 || v >= 20 {
			t.Fatalf("UniformRange out of bounds: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(8)
	const n = 200_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exponential(50)
	}
	mean := sum / n
	if math.Abs(mean-50) > 1 {
		t.Fatalf("exponential mean = %v, want ≈50", mean)
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestGammaMoments(t *testing.T) {
	g := NewRNG(9)
	cases := []struct{ shape, scale float64 }{
		{0.5, 10}, {1, 5}, {2, 3}, {7.5, 2}, {50, 0.5},
	}
	const n = 100_000
	for _, c := range cases {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := g.Gamma(c.shape, c.scale)
			if v <= 0 {
				t.Fatalf("gamma(%v,%v) produced non-positive sample %v", c.shape, c.scale, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.03*wantMean+0.05 {
			t.Errorf("gamma(%v,%v) mean = %v, want ≈%v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.10*wantVar+0.1 {
			t.Errorf("gamma(%v,%v) var = %v, want ≈%v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaWithMean(t *testing.T) {
	g := NewRNG(10)
	const n = 100_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.GammaWithMean(120, 15)
	}
	mean := sum / n
	if math.Abs(mean-120) > 2 {
		t.Fatalf("GammaWithMean mean = %v, want ≈120", mean)
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	for _, f := range []func(){
		func() { NewRNG(1).Gamma(0, 1) },
		func() { NewRNG(1).Gamma(1, 0) },
		func() { NewRNG(1).Gamma(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	// Sample stddev with n−1: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", s.StdDev, want)
	}
	wantCI := tCritical95(7) * want / math.Sqrt(8)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", s.CI95, wantCI)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CI95 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s := Summarize([]float64{3.5}); s.N != 1 || s.Mean != 3.5 || s.CI95 != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeConstantSeries(t *testing.T) {
	s := Summarize([]float64{4, 4, 4, 4})
	if s.StdDev != 0 || s.CI95 != 0 {
		t.Fatalf("constant series: %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Mean: 42.1234, CI95: 1.567}
	if got, want := s.String(), "42.12 ± 1.57"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{{1, 12.706}, {29, 2.045}, {30, 2.042}, {120, 1.980}, {1000, 1.960}, {0, 0}}
	for _, c := range cases {
		if got := tCritical95(c.df); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("t(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// Interpolated region must be monotone decreasing.
	prev := tCritical95(30)
	for df := 31; df <= 120; df++ {
		cur := tCritical95(df)
		if cur > prev+1e-12 {
			t.Fatalf("t not monotone at df=%d: %v > %v", df, cur, prev)
		}
		prev = cur
	}
}

func TestSummarizeCIShrinksWithN(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		g := NewRNG(seed)
		small := make([]float64, 5)
		big := make([]float64, 50)
		for i := range big {
			v := g.NormFloat64()
			big[i] = v
			if i < 5 {
				small[i] = v
			}
		}
		// Not a strict law for arbitrary draws, but holds overwhelmingly;
		// use a generous factor to keep the property deterministic enough.
		return Summarize(big).CI95 < Summarize(small).CI95*3
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeanOf(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Fatal("MeanOf(nil) != 0")
	}
	if got := MeanOf([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("MeanOf = %v", got)
	}
}

package stats

import (
	"fmt"
	"math"
)

// Summary is a mean ± 95% confidence interval over repeated trials, the
// form in which every experimental result in the paper is reported ("the
// mean and 95% confidence interval are reported", §V-A).
type Summary struct {
	N      int     `json:"n"`       // number of observations
	Mean   float64 `json:"mean"`    // sample mean
	StdDev float64 `json:"std_dev"` // sample standard deviation (n−1 denominator)
	CI95   float64 `json:"ci95"`    // half-width of the 95% confidence interval
}

// Summarize computes a Summary over the observations. With fewer than two
// observations the CI half-width is zero.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{N: 1, Mean: mean}
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	ci := tCritical95(n-1) * sd / math.Sqrt(float64(n))
	return Summary{N: n, Mean: mean, StdDev: sd, CI95: ci}
}

// String renders "mean ± ci" with two decimals.
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f", s.Mean, s.CI95)
}

// tTable holds two-sided 95% critical values of the Student t distribution
// for small degrees of freedom; beyond the table we interpolate toward the
// normal limit 1.960.
var tTable = map[int]float64{
	1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
	6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
	16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
	21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
	26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
	40: 2.021, 60: 2.000, 120: 1.980,
}

// tCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom.
func tCritical95(df int) float64 {
	if df <= 0 {
		return 0
	}
	if v, ok := tTable[df]; ok {
		return v
	}
	if df > 120 {
		return 1.960
	}
	// Linear interpolation between the nearest tabulated dfs.
	lo, hi := 30, 40
	switch {
	case df < 40:
		lo, hi = 30, 40
	case df < 60:
		lo, hi = 40, 60
	default:
		lo, hi = 60, 120
	}
	fl, fh := tTable[lo], tTable[hi]
	frac := float64(df-lo) / float64(hi-lo)
	return fl + frac*(fh-fl)
}

// MeanOf returns the arithmetic mean of xs (0 for empty input).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

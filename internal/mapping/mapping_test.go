package mapping_test

import (
	"fmt"
	"testing"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/mapping"
	"github.com/hpcclab/taskdrop/internal/pet"
	"github.com/hpcclab/taskdrop/internal/pmf"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// matrix2 builds a PET with len(cells) task types on two machine types
// (one machine each): cells[i] = {execPMF on m0, execPMF on m1}.
func matrix2(t testing.TB, cells ...[2]pmf.PMF) *pet.Matrix {
	t.Helper()
	nt := len(cells)
	p := pet.Profile{
		Name:             "maptest",
		TaskTypeNames:    make([]string, nt),
		MachineTypeNames: []string{"m0", "m1"},
		MeanMS:           make([][]float64, nt),
		MachinesPerType:  []int{1, 1},
		PriceHour:        []float64{0.1, 0.1},
		GammaScaleRange:  [2]float64{1, 2},
	}
	rows := make([][]pmf.PMF, nt)
	for i, c := range cells {
		p.TaskTypeNames[i] = fmt.Sprintf("t%d", i)
		p.MeanMS[i] = []float64{c[0].Mean(), c[1].Mean()}
		rows[i] = []pmf.PMF{c[0], c[1]}
	}
	return pet.FromPMFs(p, rows)
}

// run2 executes a hand-built trace on the two-machine matrix and returns
// the final task states.
func run2(t testing.TB, m *pet.Matrix, mapperName string, tasks []workload.Task) []sim.TaskState {
	return runWith(t, m, mapperName, tasks, 0)
}

// runWith is run2 with an explicit queue capacity (0 = default).
func runWith(t testing.TB, m *pet.Matrix, mapperName string, tasks []workload.Task, queueCap int) []sim.TaskState {
	t.Helper()
	mapper, err := mapping.New(mapperName)
	if err != nil {
		t.Fatal(err)
	}
	tr := &workload.Trace{Tasks: tasks, Cfg: workload.Config{TotalTasks: len(tasks), Window: 1}}
	cfg := sim.DefaultConfig()
	cfg.BoundaryExclusion = 0
	if queueCap > 0 {
		cfg.QueueCap = queueCap
	}
	e := sim.New(m, tr, mapper, core.ReactiveOnly{}, cfg)
	res := e.Run()
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	return e.TaskStates()
}

// matrix1 builds a PET with len(cells) task types on one machine type.
func matrix1(t testing.TB, cells ...pmf.PMF) *pet.Matrix {
	t.Helper()
	nt := len(cells)
	p := pet.Profile{
		Name:             "maptest1",
		TaskTypeNames:    make([]string, nt),
		MachineTypeNames: []string{"m0"},
		MeanMS:           make([][]float64, nt),
		MachinesPerType:  []int{1},
		PriceHour:        []float64{0.1},
		GammaScaleRange:  [2]float64{1, 2},
	}
	rows := make([][]pmf.PMF, nt)
	for i, c := range cells {
		p.TaskTypeNames[i] = fmt.Sprintf("t%d", i)
		p.MeanMS[i] = []float64{c.Mean()}
		rows[i] = []pmf.PMF{c}
	}
	return pet.FromPMFs(p, rows)
}

func task1(id int, tt pet.TaskType, arr, dl pmf.Tick, exec pmf.Tick) workload.Task {
	return workload.Task{ID: id, Type: tt, Arrival: arr, Deadline: dl, ExecByType: []pmf.Tick{exec}}
}

func task(id int, tt pet.TaskType, arr, dl pmf.Tick, exec0, exec1 pmf.Tick) workload.Task {
	return workload.Task{
		ID: id, Type: tt, Arrival: arr, Deadline: dl,
		ExecByType: []pmf.Tick{exec0, exec1},
	}
}

func TestNewAndNames(t *testing.T) {
	for _, name := range mapping.Names() {
		m, err := mapping.New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if m.Name() == "" {
			t.Errorf("%q has empty Name()", name)
		}
	}
	if _, err := mapping.New("minmin"); err != nil {
		t.Error("lower-case alias failed")
	}
	if _, err := mapping.New("mm"); err != nil {
		t.Error("MM alias failed")
	}
	if _, err := mapping.New("unknown-heuristic"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestMinMinPrefersFastestCompletion(t *testing.T) {
	// Type 0 runs 10 ms on m0, 50 ms on m1. Two tasks: MinMin stacks both
	// on m0 (completions 10 and 20 both beat 50).
	m := matrix2(t, [2]pmf.PMF{pmf.Delta(10), pmf.Delta(50)})
	tasks := []workload.Task{
		task(0, 0, 0, 1000, 10, 50),
		task(1, 0, 0, 1000, 10, 50),
	}
	sts := run2(t, m, "MinMin", tasks)
	if sts[0].Machine != 0 || sts[1].Machine != 0 {
		t.Fatalf("machines = %d,%d, want 0,0", sts[0].Machine, sts[1].Machine)
	}
}

func TestFCFSBalancesByAvailability(t *testing.T) {
	// Same setup as MinMin test, but FCFS sends task 1 to the idle m1
	// (availability 0 beats m0's queue mean 10)? No: FCFS picks the
	// machine minimizing the candidate completion mean — m0 gives 20,
	// m1 gives 50 → still m0. Make m1 only slightly slower so the idle
	// machine wins for the second task.
	m := matrix2(t, [2]pmf.PMF{pmf.Delta(10), pmf.Delta(15)})
	tasks := []workload.Task{
		task(0, 0, 0, 1000, 10, 15),
		task(1, 0, 0, 1000, 10, 15),
	}
	sts := run2(t, m, "FCFS", tasks)
	if sts[0].Machine != 0 || sts[1].Machine != 1 {
		t.Fatalf("machines = %d,%d, want 0,1", sts[0].Machine, sts[1].Machine)
	}
}

// deadlineOrderScenario sets up one machine with queue capacity 1: a
// blocker occupies it until t=30 while tasks with different deadlines
// accumulate in the batch, so the mapper's batch ordering becomes visible
// at completion events.
func deadlineOrderScenario(t testing.TB, mapperName string) []sim.TaskState {
	t.Helper()
	m := matrix1(t,
		pmf.Delta(30), // type 0: blocker
		pmf.Delta(10), // type 1: workload
	)
	tasks := []workload.Task{
		task1(0, 0, 0, 10000, 30), // blocker, runs 0–30
		task1(1, 1, 1, 900, 10),   // latest deadline, arrives first
		task1(2, 1, 2, 70, 10),    // soonest deadline
		task1(3, 1, 3, 400, 10),   // middle deadline
	}
	return runWith(t, m, mapperName, tasks, 1)
}

func TestMSDPicksSoonestDeadlineFirst(t *testing.T) {
	sts := deadlineOrderScenario(t, "MSD")
	if !(sts[2].Start < sts[3].Start && sts[3].Start < sts[1].Start) {
		t.Fatalf("starts = %d,%d,%d: want soonest-deadline order 2,3,1",
			sts[1].Start, sts[2].Start, sts[3].Start)
	}
}

func TestEDFPicksEarliestDeadline(t *testing.T) {
	sts := deadlineOrderScenario(t, "EDF")
	if !(sts[2].Start < sts[3].Start && sts[3].Start < sts[1].Start) {
		t.Fatalf("starts = %d,%d,%d: want deadline order 2,3,1",
			sts[1].Start, sts[2].Start, sts[3].Start)
	}
}

func TestFCFSKeepsArrivalOrderUnderContention(t *testing.T) {
	sts := deadlineOrderScenario(t, "FCFS")
	if !(sts[1].Start < sts[2].Start && sts[2].Start < sts[3].Start) {
		t.Fatalf("starts = %d,%d,%d: want arrival order 1,2,3",
			sts[1].Start, sts[2].Start, sts[3].Start)
	}
}

func TestSJFPicksShortestJob(t *testing.T) {
	// Type 0 is long (100), type 1 short (10). The short task must start
	// first even though the long one arrived first.
	m := matrix2(t,
		[2]pmf.PMF{pmf.Delta(100), pmf.Delta(100)},
		[2]pmf.PMF{pmf.Delta(10), pmf.Delta(10)},
	)
	tasks := []workload.Task{
		task(0, 0, 0, 10000, 100, 100),
		task(1, 1, 0, 10000, 10, 10),
		task(2, 0, 0, 10000, 100, 100),
	}
	sts := run2(t, m, "SJF", tasks)
	if sts[1].Start != 0 {
		t.Fatalf("short task started at %d, want 0", sts[1].Start)
	}
}

func TestPAMPrefersChanceOfSuccessOverECT(t *testing.T) {
	// m0: bimodal {1: 0.5, 120: 0.5} → mean 60.5 but CoS(dl=100) = 0.5.
	// m1: Delta(90) → mean 90, CoS = 1. MinMin picks m0; PAM must pick m1.
	bimodal := pmf.FromImpulses([]pmf.Impulse{{T: 1, P: 0.5}, {T: 120, P: 0.5}})
	m := matrix2(t, [2]pmf.PMF{bimodal, pmf.Delta(90)})
	tasks := []workload.Task{task(0, 0, 0, 100, 120, 90)}

	if sts := run2(t, m, "PAM", tasks); sts[0].Machine != 1 {
		t.Fatalf("PAM machine = %d, want 1 (higher CoS)", sts[0].Machine)
	}
	if sts := run2(t, m, "MinMin", tasks); sts[0].Machine != 0 {
		t.Fatalf("MinMin machine = %d, want 0 (lower mean completion)", sts[0].Machine)
	}
}

func TestMETIsLoadBlind(t *testing.T) {
	// m0 marginally faster in execution: MET stacks everything on m0;
	// MCT spreads to the idle m1 when m0's queue grows.
	m := matrix2(t, [2]pmf.PMF{pmf.Delta(10), pmf.Delta(12)})
	mk := func() []workload.Task {
		return []workload.Task{
			task(0, 0, 0, 10000, 10, 12),
			task(1, 0, 0, 10000, 10, 12),
			task(2, 0, 0, 10000, 10, 12),
		}
	}
	met := run2(t, m, "MET", mk())
	for i, st := range met {
		if st.Machine != 0 {
			t.Fatalf("MET task %d on machine %d, want 0", i, st.Machine)
		}
	}
	mct := run2(t, m, "MCT", mk())
	onM1 := 0
	for _, st := range mct {
		if st.Machine == 1 {
			onM1++
		}
	}
	if onM1 == 0 {
		t.Fatal("MCT never used the idle slower machine")
	}
}

func TestSufferagePrioritizesHighRegret(t *testing.T) {
	// Sufferage only differs from arrival order when several machines free
	// up at once. Both queues (capacity 2) hold a long-running blocker
	// plus a pending filler that expires at t=50; the arrival at t=60
	// reactively frees one slot on each machine in a single mapping event.
	// Batch order is then [Y, X, E]; X (regret 90) must preempt Y
	// (regret 2) for machine 0.
	m := matrix2(t,
		[2]pmf.PMF{pmf.Delta(100), pmf.Delta(100)}, // type 0: blocker
		[2]pmf.PMF{pmf.Delta(10), pmf.Delta(10)},   // type 1: filler
		[2]pmf.PMF{pmf.Delta(12), pmf.Delta(14)},   // type 2: Y (low regret)
		[2]pmf.PMF{pmf.Delta(10), pmf.Delta(100)},  // type 3: X (high regret)
	)
	tasks := []workload.Task{
		task(0, 0, 0, 10000, 100, 100), // blocker → m0
		task(1, 0, 0, 10000, 100, 100), // blocker → m1
		task(2, 1, 1, 50, 10, 10),      // filler → m0, expires t=50
		task(3, 1, 2, 50, 10, 10),      // filler → m1, expires t=50
		task(4, 2, 3, 10000, 12, 14),   // Y, batched (queues full)
		task(5, 3, 4, 10000, 10, 100),  // X, batched
		task(6, 1, 60, 10000, 10, 10),  // E: triggers the double-free event
	}
	sts := runWith(t, m, "Sufferage", tasks, 2)
	if sts[5].Machine != 0 {
		t.Fatalf("X on machine %d, want 0 (high sufferage wins its best machine)", sts[5].Machine)
	}
	if sts[4].Machine != 1 {
		t.Fatalf("Y on machine %d, want 1", sts[4].Machine)
	}
}

func TestKPBRestrictsToBestExecSubset(t *testing.T) {
	// KPB at 50% over two machines considers only the single best-exec
	// machine per task: everything lands on m0 regardless of its queue.
	m := matrix2(t, [2]pmf.PMF{pmf.Delta(10), pmf.Delta(11)})
	tasks := []workload.Task{
		task(0, 0, 0, 10000, 10, 11),
		task(1, 0, 0, 10000, 10, 11),
		task(2, 0, 0, 10000, 10, 11),
	}
	mapper := mapping.KPB{Percent: 50}
	tr := &workload.Trace{Tasks: tasks, Cfg: workload.Config{TotalTasks: len(tasks), Window: 1}}
	cfg := sim.DefaultConfig()
	cfg.BoundaryExclusion = 0
	e := sim.New(m, tr, mapper, core.ReactiveOnly{}, cfg)
	e.Run()
	for i, st := range e.TaskStates() {
		if st.Machine != 0 {
			t.Fatalf("KPB task %d on machine %d, want 0", i, st.Machine)
		}
	}
}

func TestRandomAssignsEverythingDeterministically(t *testing.T) {
	m := matrix2(t, [2]pmf.PMF{pmf.Delta(10), pmf.Delta(10)})
	mk := func() []workload.Task {
		var ts []workload.Task
		for i := 0; i < 20; i++ {
			ts = append(ts, task(i, 0, pmf.Tick(i), 10000, 10, 10))
		}
		return ts
	}
	run := func() []int {
		tr := &workload.Trace{Tasks: mk(), Cfg: workload.Config{TotalTasks: 20, Window: 1}}
		cfg := sim.DefaultConfig()
		cfg.BoundaryExclusion = 0
		e := sim.New(m, tr, mapping.NewRandom(3), core.ReactiveOnly{}, cfg)
		e.Run()
		var machines []int
		for _, st := range e.TaskStates() {
			if st.Status != sim.StatusCompletedOnTime {
				t.Fatalf("task %d status %v", st.Task.ID, st.Status)
			}
			machines = append(machines, st.Machine)
		}
		return machines
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Random mapper with same seed must be deterministic")
		}
	}
	saw := map[int]bool{}
	for _, mi := range a {
		saw[mi] = true
	}
	if len(saw) < 2 {
		t.Fatal("Random mapper never used the second machine in 20 draws")
	}
}

// TestAllMappersSurviveRealisticWorkload is the integration smoke test:
// every registered heuristic must drain a generated oversubscribed trace
// without violating engine invariants, under every dropping policy.
func TestAllMappersSurviveRealisticWorkload(t *testing.T) {
	m := pet.Build(pet.VideoProfile(), 1, pet.BuildOptions{SamplesPerCell: 150, BinsPerPMF: 15})
	tr := workload.Generate(m, workload.Config{TotalTasks: 500, Window: 2500, GammaSlack: 2}, 13)
	droppers := []core.Policy{core.ReactiveOnly{}, core.NewHeuristic(), core.Optimal{}, core.NewThreshold()}
	for _, name := range mapping.Names() {
		for _, dp := range droppers {
			mapper, err := mapping.New(name)
			if err != nil {
				t.Fatal(err)
			}
			res := sim.New(m, tr, mapper, dp, sim.DefaultConfig()).Run()
			if err := res.Validate(); err != nil {
				t.Fatalf("%s+%s: %v", name, dp.Name(), err)
			}
		}
	}
}

// Package mapping implements the mapping heuristics of §V-B: the
// heterogeneous-system two-phase batch heuristics MinMin (MM), MSD and PAM,
// the homogeneous-system queue disciplines FCFS, SJF and EDF, and several
// classic HC heuristics (MCT, MET, Sufferage, KPB, Random) used for the
// ablation study of the "a good dropper forgives a poor mapper"
// observation.
//
// All heuristics implement sim.Mapper and are constructed by name through
// New.
package mapping

import (
	"fmt"
	"math"
	"sort"

	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/spec"
	"github.com/hpcclab/taskdrop/internal/stats"
)

// FromSpec constructs a mapper from a parameterized spec string (see
// package spec for the grammar). Recognized components: MinMin/MM, MSD,
// PAM, FCFS, SJF, EDF, MCT, MET, Sufferage, KPB and Random; the last two
// take parameters:
//
//	kpb:percent=<int in (0,100]>
//	random:seed=<int64>
func FromSpec(s string) (sim.Mapper, error) {
	name, params, err := spec.Parse(s)
	if err != nil {
		return nil, err
	}
	var m sim.Mapper
	switch name {
	case "minmin", "mm":
		m = MinMin{}
	case "msd":
		m = MSD{}
	case "pam":
		m = PAM{}
	case "fcfs":
		m = FCFS{}
	case "sjf":
		m = SJF{}
	case "edf":
		m = EDF{}
	case "mct":
		m = MCT{}
	case "met":
		m = MET{}
	case "sufferage":
		m = Sufferage{}
	case "kpb":
		k := KPB{Percent: params.Int("percent", 25)}
		if k.Percent <= 0 || k.Percent > 100 {
			return nil, fmt.Errorf("mapping: kpb percent must be in (0,100], got %q", s)
		}
		m = k
	case "random":
		m = NewRandom(params.Int64("seed", 1))
	default:
		return nil, fmt.Errorf("mapping: unknown heuristic %q", s)
	}
	if err := params.Finish(); err != nil {
		return nil, err
	}
	return m, nil
}

// New constructs a mapper by (case-insensitive) name or parameterized
// spec; it is the same resolution path as FromSpec.
func New(name string) (sim.Mapper, error) { return FromSpec(name) }

// Names lists the constructible heuristic names.
func Names() []string {
	return []string{"MinMin", "MSD", "PAM", "FCFS", "SJF", "EDF", "MCT", "MET", "Sufferage", "KPB", "Random"}
}

// freeMachines returns the machines that currently have an open slot.
func freeMachines(ev *sim.MappingEvent) []*sim.Machine {
	var out []*sim.Machine
	for _, m := range ev.Machines() {
		if ev.FreeSlots(m) > 0 {
			out = append(out, m)
		}
	}
	return out
}

// bestByECT returns the free machine giving task ts the minimum expected
// completion time (mean of the Eq. 1 candidate completion PMF), and that
// minimum.
func bestByECT(ev *sim.MappingEvent, ts *sim.TaskState, free []*sim.Machine) (*sim.Machine, float64) {
	var best *sim.Machine
	bestECT := math.Inf(1)
	for _, m := range free {
		if ect := ev.CandidateCompletion(ts, m).Mean(); ect < bestECT {
			best, bestECT = m, ect
		}
	}
	return best, bestECT
}

// MinMin is the MinCompletion-MinCompletion batch heuristic (§V-B1): phase
// one pairs every unmapped task with the machine minimizing its expected
// completion time; phase two commits the pair with the overall minimum
// expected completion time, then repeats until queues are full or the
// batch is empty.
type MinMin struct{}

// Name implements sim.Mapper.
func (MinMin) Name() string { return "MinMin" }

// Map implements sim.Mapper.
func (MinMin) Map(ev *sim.MappingEvent) {
	for {
		free := freeMachines(ev)
		if len(free) == 0 || len(ev.Batch()) == 0 {
			return
		}
		var (
			pickTask *sim.TaskState
			pickMach *sim.Machine
			pickECT  = math.Inf(1)
		)
		for _, ts := range ev.Batch() {
			m, ect := bestByECT(ev, ts, free)
			if ect < pickECT {
				pickTask, pickMach, pickECT = ts, m, ect
			}
		}
		if pickTask == nil {
			return
		}
		ev.Assign(pickTask, pickMach)
	}
}

// MSD is the MinCompletion-Soonest Deadline batch heuristic (§V-B2): phase
// one as MinMin; phase two commits the pair with the soonest deadline, ties
// broken by minimum expected completion time.
type MSD struct{}

// Name implements sim.Mapper.
func (MSD) Name() string { return "MSD" }

// Map implements sim.Mapper.
func (MSD) Map(ev *sim.MappingEvent) {
	for {
		free := freeMachines(ev)
		if len(free) == 0 || len(ev.Batch()) == 0 {
			return
		}
		var (
			pickTask *sim.TaskState
			pickMach *sim.Machine
			pickECT  = math.Inf(1)
		)
		for _, ts := range ev.Batch() {
			m, ect := bestByECT(ev, ts, free)
			if m == nil {
				continue
			}
			better := pickTask == nil ||
				ts.Task.Deadline < pickTask.Task.Deadline ||
				(ts.Task.Deadline == pickTask.Task.Deadline && ect < pickECT)
			if better {
				pickTask, pickMach, pickECT = ts, m, ect
			}
		}
		if pickTask == nil {
			return
		}
		ev.Assign(pickTask, pickMach)
	}
}

// PAM is the Pruning-Aware Mapping heuristic of Gentry et al. (§V-B3):
// phase one pairs every task with the machine offering the highest chance
// of success; phase two commits the pair with the lowest expected
// completion time, ties broken by shortest expected execution time. (Task
// deferring, which PAM also performs, is disabled per §V-B3.)
type PAM struct{}

// Name implements sim.Mapper.
func (PAM) Name() string { return "PAM" }

// Map implements sim.Mapper.
func (PAM) Map(ev *sim.MappingEvent) {
	for {
		free := freeMachines(ev)
		if len(free) == 0 || len(ev.Batch()) == 0 {
			return
		}
		var (
			pickTask *sim.TaskState
			pickMach *sim.Machine
			pickECT  = math.Inf(1)
			pickExec = math.Inf(1)
		)
		for _, ts := range ev.Batch() {
			// Phase 1: machine with the highest chance of success; ties by
			// lower expected completion.
			var (
				bm      *sim.Machine
				bestCoS = -1.0
				bestECT = math.Inf(1)
			)
			for _, m := range free {
				c := ev.CandidateCompletion(ts, m)
				cos := c.MassBefore(ts.Task.Deadline)
				ect := c.Mean()
				if cos > bestCoS+1e-12 || (cos > bestCoS-1e-12 && ect < bestECT) {
					bm, bestCoS, bestECT = m, cos, ect
				}
			}
			if bm == nil {
				continue
			}
			// Phase 2: lowest completion time; ties by shortest execution.
			exec := ev.ExpectedExec(ts, bm)
			if bestECT < pickECT-1e-9 || (bestECT < pickECT+1e-9 && exec < pickExec) {
				pickTask, pickMach, pickECT, pickExec = ts, bm, bestECT, exec
			}
		}
		if pickTask == nil {
			return
		}
		ev.Assign(pickTask, pickMach)
	}
}

// FCFS maps the earliest-arrived task first, to the machine with the
// earliest expected availability (the tail completion mean).
type FCFS struct{}

// Name implements sim.Mapper.
func (FCFS) Name() string { return "FCFS" }

// Map implements sim.Mapper.
func (FCFS) Map(ev *sim.MappingEvent) {
	for len(ev.Batch()) > 0 {
		free := freeMachines(ev)
		if len(free) == 0 {
			return
		}
		ts := ev.Batch()[0]
		m, _ := bestByECT(ev, ts, free)
		ev.Assign(ts, m)
	}
}

// SJF maps the task with the shortest expected execution time first (its
// cheapest PET cell), to the machine minimizing its expected completion.
type SJF struct{}

// Name implements sim.Mapper.
func (SJF) Name() string { return "SJF" }

// Map implements sim.Mapper.
func (SJF) Map(ev *sim.MappingEvent) {
	for len(ev.Batch()) > 0 {
		free := freeMachines(ev)
		if len(free) == 0 {
			return
		}
		var (
			pick     *sim.TaskState
			pickExec = math.Inf(1)
		)
		for _, ts := range ev.Batch() {
			e := math.Inf(1)
			for _, m := range free {
				if v := ev.ExpectedExec(ts, m); v < e {
					e = v
				}
			}
			if e < pickExec {
				pick, pickExec = ts, e
			}
		}
		m, _ := bestByECT(ev, pick, free)
		ev.Assign(pick, m)
	}
}

// EDF maps the task with the earliest deadline first, to the machine
// minimizing its expected completion.
type EDF struct{}

// Name implements sim.Mapper.
func (EDF) Name() string { return "EDF" }

// Map implements sim.Mapper.
func (EDF) Map(ev *sim.MappingEvent) {
	for len(ev.Batch()) > 0 {
		free := freeMachines(ev)
		if len(free) == 0 {
			return
		}
		pick := ev.Batch()[0]
		for _, ts := range ev.Batch()[1:] {
			if ts.Task.Deadline < pick.Task.Deadline {
				pick = ts
			}
		}
		m, _ := bestByECT(ev, pick, free)
		ev.Assign(pick, m)
	}
}

// MCT (Minimum Completion Time) maps tasks in arrival order, each to the
// machine minimizing its expected completion time.
type MCT struct{}

// Name implements sim.Mapper.
func (MCT) Name() string { return "MCT" }

// Map implements sim.Mapper.
func (MCT) Map(ev *sim.MappingEvent) {
	for len(ev.Batch()) > 0 {
		free := freeMachines(ev)
		if len(free) == 0 {
			return
		}
		ts := ev.Batch()[0]
		m, _ := bestByECT(ev, ts, free)
		ev.Assign(ts, m)
	}
}

// MET (Minimum Execution Time) maps tasks in arrival order, each to the
// machine with its smallest mean execution time, ignoring queue state —
// the classic load-blind baseline.
type MET struct{}

// Name implements sim.Mapper.
func (MET) Name() string { return "MET" }

// Map implements sim.Mapper.
func (MET) Map(ev *sim.MappingEvent) {
	for len(ev.Batch()) > 0 {
		free := freeMachines(ev)
		if len(free) == 0 {
			return
		}
		ts := ev.Batch()[0]
		var (
			pick     *sim.Machine
			pickExec = math.Inf(1)
		)
		for _, m := range free {
			if v := ev.ExpectedExec(ts, m); v < pickExec {
				pick, pickExec = m, v
			}
		}
		ev.Assign(ts, pick)
	}
}

// Sufferage commits the task that would "suffer" most if denied its best
// machine: the task maximizing the gap between its second-best and best
// expected completion times.
type Sufferage struct{}

// Name implements sim.Mapper.
func (Sufferage) Name() string { return "Sufferage" }

// Map implements sim.Mapper.
func (Sufferage) Map(ev *sim.MappingEvent) {
	for len(ev.Batch()) > 0 {
		free := freeMachines(ev)
		if len(free) == 0 {
			return
		}
		var (
			pick     *sim.TaskState
			pickMach *sim.Machine
			pickSuf  = math.Inf(-1)
		)
		for _, ts := range ev.Batch() {
			best, second := math.Inf(1), math.Inf(1)
			var bm *sim.Machine
			for _, m := range free {
				ect := ev.CandidateCompletion(ts, m).Mean()
				switch {
				case ect < best:
					second, best, bm = best, ect, m
				case ect < second:
					second = ect
				}
			}
			suf := second - best
			if math.IsInf(second, 1) {
				suf = 0 // single free machine: no alternative to suffer against
			}
			if suf > pickSuf {
				pick, pickMach, pickSuf = ts, bm, suf
			}
		}
		if pick == nil {
			return
		}
		ev.Assign(pick, pickMach)
	}
}

// KPB (K-Percent Best) maps tasks in arrival order; each task considers
// only the K percent of free machines with its best mean execution times
// and picks the minimum expected completion among them.
type KPB struct {
	// Percent is K in (0, 100]; at least one machine is always considered.
	Percent int
}

// Name implements sim.Mapper.
func (KPB) Name() string { return "KPB" }

// Map implements sim.Mapper.
func (k KPB) Map(ev *sim.MappingEvent) {
	pct := k.Percent
	if pct <= 0 || pct > 100 {
		pct = 25
	}
	for len(ev.Batch()) > 0 {
		free := freeMachines(ev)
		if len(free) == 0 {
			return
		}
		ts := ev.Batch()[0]
		sort.Slice(free, func(i, j int) bool {
			return ev.ExpectedExec(ts, free[i]) < ev.ExpectedExec(ts, free[j])
		})
		n := (len(free)*pct + 99) / 100
		if n < 1 {
			n = 1
		}
		m, _ := bestByECT(ev, ts, free[:n])
		ev.Assign(ts, m)
	}
}

// Random maps tasks in arrival order to uniformly random free machines.
// It is the floor any sensible heuristic must beat.
type Random struct {
	rng *stats.RNG
}

// NewRandom returns a Random mapper with its own seeded stream.
func NewRandom(seed int64) *Random { return &Random{rng: stats.NewRNG(seed)} }

// Name implements sim.Mapper.
func (*Random) Name() string { return "Random" }

// Map implements sim.Mapper.
func (r *Random) Map(ev *sim.MappingEvent) {
	for len(ev.Batch()) > 0 {
		free := freeMachines(ev)
		if len(free) == 0 {
			return
		}
		ev.Assign(ev.Batch()[0], free[r.rng.Intn(len(free))])
	}
}

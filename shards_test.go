package taskdrop

import (
	"context"
	"testing"
)

// TestScenarioWithShardsRuns: a sharded scenario runs to a conserved
// Result, is reproducible run-to-run, and WithShards(1) is byte-identical
// to the default unsharded scenario.
func TestScenarioWithShardsRuns(t *testing.T) {
	ctx := context.Background()
	base := []ScenarioOption{
		WithMapper("PAM"), WithDropper("heuristic"),
		WithTasks(400), WithWindow(StandardWindow / 75), WithSeed(3),
	}

	plain, err := NewScenario("video", base...)
	if err != nil {
		t.Fatal(err)
	}
	oneShard, err := NewScenario("video", append(append([]ScenarioOption{}, base...), WithShards(1), WithRouter("p2c"))...)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := oneShard.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if *rp.Trials[0] != *r1.Trials[0] {
		t.Fatalf("WithShards(1) diverged from the unsharded scenario:\n%+v\n%+v", r1.Trials[0], rp.Trials[0])
	}

	for _, routerSpec := range []string{"rr", "mass", "p2c:seed=9"} {
		sharded, err := NewScenario("video", append(append([]ScenarioOption{}, base...), WithShards(4), WithRouter(routerSpec))...)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := sharded.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		res := ra.Trials[0]
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", routerSpec, err)
		}
		if res.Total != 400 {
			t.Fatalf("%s: total %d, want 400", routerSpec, res.Total)
		}
		// Reproducible: a second scenario with the same knobs matches.
		again, err := NewScenario("video", append(append([]ScenarioOption{}, base...), WithShards(4), WithRouter(routerSpec))...)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := again.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if *res != *rb.Trials[0] {
			t.Fatalf("%s: sharded scenario not reproducible:\n%+v\n%+v", routerSpec, res, rb.Trials[0])
		}
	}
}

// TestScenarioShardValidation: bad shard counts and router specs fail at
// construction.
func TestScenarioShardValidation(t *testing.T) {
	if _, err := NewScenario("video", WithShards(0)); err == nil {
		t.Error("WithShards(0) accepted")
	}
	if _, err := NewScenario("video", WithShards(9)); err == nil {
		t.Error("WithShards(9) accepted on an 8-machine system")
	}
	if _, err := NewScenario("video", WithRouter("nosuch")); err == nil {
		t.Error("bad router spec accepted")
	}
	if _, err := NewRouter("p2c:seed=2"); err != nil {
		t.Errorf("NewRouter: %v", err)
	}
	// rr, mass, p2c, and the router tier's class-hash policy.
	if got := RouterNames(); len(got) != 4 {
		t.Errorf("RouterNames() = %v", got)
	}
}

// TestShardsSweepAxis: the Shards/Routers axes expand into a grid whose
// cells share traces (paired by construction) and report per-cell
// robustness.
func TestShardsSweepAxis(t *testing.T) {
	sw, err := NewSweep(
		Profiles("video"),
		Shards(1, 2, 4),
		Routers("rr", "p2c"),
		Tasks(300),
		Windows(StandardWindow/100),
		SweepSeed(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Cells); got != 6 {
		t.Fatalf("grid expanded to %d cells, want 6", got)
	}
	for _, cell := range res.Cells {
		r := cell.Run.Summary.Robustness.Mean
		if r < 0 || r > 100 {
			t.Fatalf("cell %q robustness %v out of range", cell.Label, r)
		}
	}
}

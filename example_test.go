package taskdrop_test

import (
	"context"
	"fmt"

	taskdrop "github.com/hpcclab/taskdrop"
)

// ExampleNewScenario runs the paper's comparison discipline end to end:
// two scenarios differing only in dropping policy, sharing a base seed so
// every trial is paired on identical arrivals, aggregated as mean ± 95%
// CI over trials.
func ExampleNewScenario() {
	run := func(dropper string) *taskdrop.RunResult {
		sc, err := taskdrop.NewScenario("video",
			taskdrop.WithMapper("PAM"),
			taskdrop.WithDropper(dropper),
			taskdrop.WithTasks(500),
			taskdrop.WithWindow(3000),
			taskdrop.WithTrials(3),
			taskdrop.WithSeed(42),
		)
		if err != nil {
			panic(err)
		}
		rr, err := sc.Run(context.Background())
		if err != nil {
			panic(err)
		}
		return rr
	}
	with := run("heuristic:beta=1,eta=2")
	without := run("reactdrop")
	fmt.Println("trials:", with.Summary.Robustness.N)
	fmt.Println("proactive dropping helps:", with.Summary.Robustness.Mean > without.Summary.Robustness.Mean)
	// Output:
	// trials: 3
	// proactive dropping helps: true
}

// ExampleNewSweep declares the paper's headline comparison as a grid:
// dropping policy × oversubscription level, every cell paired on
// identical traces, with the no-proactive-dropping baseline designated so
// each policy cell carries a paired-difference CI — the statistically
// tight way to report "how much does dropping help".
func ExampleNewSweep() {
	sw, err := taskdrop.NewSweep(
		taskdrop.Profiles("video"),
		taskdrop.Mappers("PAM"),
		taskdrop.Droppers("heuristic:beta=1,eta=2", "reactdrop"),
		taskdrop.Tasks(400, 600),
		taskdrop.Each(taskdrop.WithWindow(3000)),
		taskdrop.SweepTrials(3),
		taskdrop.SweepSeed(42),
		taskdrop.Baseline("reactdrop"),
	)
	if err != nil {
		panic(err)
	}
	res, err := sw.Run(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("cells:", len(res.Cells))
	for _, level := range []string{"400", "600"} {
		cell, _ := res.Cell("Heuristic", level)
		d := cell.VsBaseline.Robustness
		fmt.Printf("@%s tasks: dropping helps (paired Δ > 0): %v\n", level, d.Mean > 0)
	}
	// Output:
	// cells: 4
	// @400 tasks: dropping helps (paired Δ > 0): true
	// @600 tasks: dropping helps (paired Δ > 0): true
}

// Example demonstrates the minimal end-to-end flow: build a system,
// generate an oversubscribed workload, and compare robustness with and
// without the autonomous proactive dropping heuristic on identical
// arrivals.
func Example() {
	sys := taskdrop.VideoSystem()
	trace := sys.Workload(500, 3000, taskdrop.DefaultGammaSlack, 42)

	with, _ := sys.Simulate(trace, "PAM", taskdrop.HeuristicDropper())
	without, _ := sys.Simulate(trace, "PAM", taskdrop.ReactiveDropper())

	fmt.Println("proactive dropping helps:", with.RobustnessPct > without.RobustnessPct)
	// Output:
	// proactive dropping helps: true
}

// ExampleSystem_Workload shows the deadline rule of §V-A: every task's
// deadline is its arrival plus its type's mean execution time plus
// γ × the grand mean.
func ExampleSystem_Workload() {
	sys := taskdrop.VideoSystem()
	trace := sys.Workload(3, 100, 1.0, 7)
	for _, task := range trace.Tasks {
		fmt.Println(task.Deadline > task.Arrival)
	}
	// Output:
	// true
	// true
	// true
}

// ExampleHeuristicDropperWith tunes the heuristic's aggressiveness: β
// close to 1 drops on any improvement, larger β is more conservative
// (Fig. 6 of the paper).
func ExampleHeuristicDropperWith() {
	conservative := taskdrop.HeuristicDropperWith(2.0, 2)
	fmt.Println(conservative.Name())
	// Output:
	// Heuristic
}

// ExampleMapperNames lists the built-in mapping heuristics that can be
// passed to System.Simulate.
func ExampleMapperNames() {
	names := taskdrop.MapperNames()
	fmt.Println(len(names) >= 6, names[0], names[2])
	// Output:
	// true MinMin PAM
}

package taskdrop_test

import (
	"fmt"

	taskdrop "github.com/hpcclab/taskdrop"
)

// Example demonstrates the minimal end-to-end flow: build a system,
// generate an oversubscribed workload, and compare robustness with and
// without the autonomous proactive dropping heuristic on identical
// arrivals.
func Example() {
	sys := taskdrop.VideoSystem()
	trace := sys.Workload(500, 3000, taskdrop.DefaultGammaSlack, 42)

	with, _ := sys.Simulate(trace, "PAM", taskdrop.HeuristicDropper())
	without, _ := sys.Simulate(trace, "PAM", taskdrop.ReactiveDropper())

	fmt.Println("proactive dropping helps:", with.RobustnessPct > without.RobustnessPct)
	// Output:
	// proactive dropping helps: true
}

// ExampleSystem_Workload shows the deadline rule of §V-A: every task's
// deadline is its arrival plus its type's mean execution time plus
// γ × the grand mean.
func ExampleSystem_Workload() {
	sys := taskdrop.VideoSystem()
	trace := sys.Workload(3, 100, 1.0, 7)
	for _, task := range trace.Tasks {
		fmt.Println(task.Deadline > task.Arrival)
	}
	// Output:
	// true
	// true
	// true
}

// ExampleHeuristicDropperWith tunes the heuristic's aggressiveness: β
// close to 1 drops on any improvement, larger β is more conservative
// (Fig. 6 of the paper).
func ExampleHeuristicDropperWith() {
	conservative := taskdrop.HeuristicDropperWith(2.0, 2)
	fmt.Println(conservative.Name())
	// Output:
	// Heuristic
}

// ExampleMapperNames lists the built-in mapping heuristics that can be
// passed to System.Simulate.
func ExampleMapperNames() {
	names := taskdrop.MapperNames()
	fmt.Println(len(names) >= 6, names[0], names[2])
	// Output:
	// true MinMin PAM
}

package taskdrop

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"github.com/hpcclab/taskdrop/internal/core"
	"github.com/hpcclab/taskdrop/internal/runner"
	"github.com/hpcclab/taskdrop/internal/sim"
	"github.com/hpcclab/taskdrop/internal/tab"
	"github.com/hpcclab/taskdrop/internal/workload"
)

// Table is a printable experiment result (aligned text via Fprint, or
// CSV). SweepResult renders into Tables; the figure harness prints the
// same type.
type Table = tab.Table

// Metric names one aggregated statistic of a cell's Summary, for Pivot
// layouts and programmatic access (Summary.Stat).
type Metric string

// The metrics every cell aggregates (the names are the Summary's JSON
// tags).
const (
	// MetricRobustness is % of measured tasks completed on time — the
	// paper's headline metric.
	MetricRobustness Metric = "robustness"
	// MetricNormCost is Fig. 9's normalized cost ($ per 1000
	// robustness-percent).
	MetricNormCost Metric = "norm_cost"
	// MetricReactiveShare is the % of drops that were reactive (§V-F).
	MetricReactiveShare Metric = "reactive_share"
	// MetricUtility is the approximate-computing realized-utility metric.
	MetricUtility Metric = "utility"
	// MetricProactivePct / MetricReactivePct are % of measured tasks
	// dropped each way.
	MetricProactivePct Metric = "proactive_pct"
	MetricReactivePct  Metric = "reactive_pct"
)

// AxisValue is one point on an Axis: a display label plus the scenario
// options that configure a cell taking this value. Build custom values
// with Value; the typed axis constructors (Mappers, Tasks, …) build
// theirs internally.
type AxisValue struct {
	label string
	// spec preserves the text the value was declared with (registry spec,
	// number, …) so Baseline can match either the label or the raw form.
	spec string
	// profile is set only by the Profiles axis: profiles are NewScenario's
	// positional argument, not an option.
	profile string
	opts    []ScenarioOption
}

// Value builds a custom axis value from arbitrary scenario options, for
// dimensions the typed constructors don't cover (or joint dimensions like
// "mapper+dropper combos").
func Value(label string, opts ...ScenarioOption) AxisValue {
	return AxisValue{label: label, spec: label, opts: opts}
}

// Axis is one dimension of a sweep grid: a name and the values the
// dimension ranges over. A sweep expands the cross product of its axes
// into cells.
type Axis struct {
	name   string
	values []AxisValue
	err    error // deferred construction error, reported by NewSweep
}

// applySweep implements SweepItem.
func (a Axis) applySweep(s *Sweep) { s.axes = append(s.axes, a) }

// Named renames the axis dimension (shown as a column header in tables
// and addressed by Pivot), e.g. Droppers(…).Named("η").
func (a Axis) Named(name string) Axis {
	a.name = name
	return a
}

// As relabels the axis values in order; the label count must match the
// value count. Use it when the default labels collide or read poorly
// (five heuristic specs differing only in η relabel as "1"…"5").
func (a Axis) As(labels ...string) Axis {
	if len(labels) != len(a.values) {
		a.err = fmt.Errorf("taskdrop: axis %q has %d values but As got %d labels", a.name, len(a.values), len(labels))
		return a
	}
	vals := append([]AxisValue(nil), a.values...)
	for i := range vals {
		vals[i].label = labels[i]
	}
	a.values = vals
	return a
}

// Values builds a custom axis from explicit values.
func Values(name string, vals ...AxisValue) Axis {
	return Axis{name: name, values: vals}
}

// Profiles declares the system-profile axis ("spec", "video", "homog", or
// parameterized — see NewProfile). Without a Profiles axis a sweep uses
// the paper's primary "spec" system.
func Profiles(specs ...string) Axis {
	a := Axis{name: "profile"}
	for _, sp := range specs {
		a.values = append(a.values, AxisValue{label: sp, spec: sp, profile: sp})
	}
	return a
}

// Mappers declares the mapping-heuristic axis from registry specs (see
// NewMapper).
func Mappers(specs ...string) Axis {
	a := Axis{name: "mapper"}
	for _, sp := range specs {
		a.values = append(a.values, AxisValue{label: sp, spec: sp, opts: []ScenarioOption{WithMapper(sp)}})
	}
	return a
}

// Droppers declares the dropping-policy axis from registry specs (see
// NewDropper). Values are labeled with the policy's display name
// ("Heuristic", "ReactDrop", …) when those are distinct, else with the
// spec text; relabel with As when sweeping one policy's parameters.
func Droppers(specs ...string) Axis {
	a := Axis{name: "dropper"}
	labels := make([]string, len(specs))
	distinct := make(map[string]bool)
	for i, sp := range specs {
		labels[i] = sp
		if p, err := core.PolicyFromSpec(sp); err == nil {
			labels[i] = p.Name()
		}
		distinct[labels[i]] = true
	}
	for i, sp := range specs {
		label := labels[i]
		if len(distinct) != len(specs) {
			label = sp // display names collide; fall back to the raw specs
		}
		a.values = append(a.values, AxisValue{label: label, spec: sp, opts: []ScenarioOption{WithDropper(sp)}})
	}
	return a
}

// Tasks declares the oversubscription axis: arriving tasks per trial.
// Values divisible by 1000 are labeled "20k"-style, as in the paper's
// figures.
func Tasks(levels ...int) Axis {
	a := Axis{name: "tasks"}
	for _, n := range levels {
		a.values = append(a.values, AxisValue{
			label: taskLevelLabel(n), spec: strconv.Itoa(n),
			opts: []ScenarioOption{WithTasks(n)},
		})
	}
	return a
}

// taskLevelLabel renders an oversubscription level as "20k" when round.
func taskLevelLabel(n int) string {
	if n%1000 == 0 {
		return fmt.Sprintf("%dk", n/1000)
	}
	return strconv.Itoa(n)
}

// Gammas declares the deadline-slack-coefficient axis (γ of the deadline
// rule).
func Gammas(gs ...float64) Axis {
	a := Axis{name: "gamma"}
	for _, g := range gs {
		label := strconv.FormatFloat(g, 'g', -1, 64)
		a.values = append(a.values, AxisValue{label: label, spec: label, opts: []ScenarioOption{WithGamma(g)}})
	}
	return a
}

// Windows declares the arrival-window axis, in ticks.
func Windows(ws ...Tick) Axis {
	a := Axis{name: "window"}
	for _, w := range ws {
		label := strconv.FormatInt(int64(w), 10)
		a.values = append(a.values, AxisValue{label: label, spec: label, opts: []ScenarioOption{WithWindow(w)}})
	}
	return a
}

// QueueCaps declares the machine-queue-bound axis.
func QueueCaps(ns ...int) Axis {
	a := Axis{name: "queuecap"}
	for _, n := range ns {
		label := strconv.Itoa(n)
		a.values = append(a.values, AxisValue{label: label, spec: label, opts: []ScenarioOption{WithQueueCap(n)}})
	}
	return a
}

// Graces declares the reactive-grace-window axis of the
// approximate-computing extension. The default "approx" dropper follows
// the engine grace automatically, so pairing it with this axis sweeps
// both sides of the leeway together.
func Graces(gs ...Tick) Axis {
	a := Axis{name: "grace"}
	for _, g := range gs {
		label := strconv.FormatInt(int64(g), 10)
		a.values = append(a.values, AxisValue{label: label, spec: label, opts: []ScenarioOption{WithGrace(g)}})
	}
	return a
}

// Budgets declares the PMF-compaction-budget axis (see WithMaxImpulses).
func Budgets(ns ...int) Axis {
	a := Axis{name: "budget"}
	for _, n := range ns {
		label := strconv.Itoa(n)
		a.values = append(a.values, AxisValue{label: label, spec: label, opts: []ScenarioOption{WithMaxImpulses(n)}})
	}
	return a
}

// Shards declares the cluster-sharding axis (see WithShards), for
// charting robustness against shard count.
func Shards(ns ...int) Axis {
	a := Axis{name: "shards"}
	for _, n := range ns {
		label := strconv.Itoa(n)
		a.values = append(a.values, AxisValue{label: label, spec: label, opts: []ScenarioOption{WithShards(n)}})
	}
	return a
}

// Routers declares the shard-routing-policy axis from registry specs (see
// NewRouter and WithRouter).
func Routers(specs ...string) Axis {
	a := Axis{name: "router"}
	for _, sp := range specs {
		a.values = append(a.values, AxisValue{label: sp, spec: sp, opts: []ScenarioOption{WithRouter(sp)}})
	}
	return a
}

// FailurePlans declares the machine-failure-injection axis. A zero
// FailureConfig labels "none"; enabled configs label "mtbf=<ticks>".
func FailurePlans(fcs ...FailureConfig) Axis {
	a := Axis{name: "failures"}
	for _, fc := range fcs {
		label := "none"
		if fc.Enabled() {
			label = fmt.Sprintf("mtbf=%d", fc.MTBF)
		}
		a.values = append(a.values, AxisValue{label: label, spec: label, opts: []ScenarioOption{WithFailures(fc)}})
	}
	return a
}

// ChurnPlans declares the machine-churn axis (runtime membership change,
// see WithChurn). A zero ChurnConfig labels "none"; enabled configs label
// "interval=<ticks>".
func ChurnPlans(ccs ...ChurnConfig) Axis {
	a := Axis{name: "churn"}
	for _, cc := range ccs {
		label := "none"
		if cc.Enabled() {
			label = fmt.Sprintf("interval=%d", cc.MeanInterval)
		}
		a.values = append(a.values, AxisValue{label: label, spec: label, opts: []ScenarioOption{WithChurn(cc)}})
	}
	return a
}

// SweepItem is anything NewSweep accepts: an Axis, or a sweep-level
// option (SweepTrials, Baseline, …).
type SweepItem interface{ applySweep(*Sweep) }

// SweepOption is a sweep-level configuration item.
type SweepOption func(*Sweep)

// applySweep implements SweepItem.
func (o SweepOption) applySweep(s *Sweep) { o(s) }

// SweepTrials sets the seeded trials per cell (default 1; the paper
// reports 30).
func SweepTrials(n int) SweepOption {
	return func(s *Sweep) { s.trials = n }
}

// SweepSeed sets the base seed; trial t of every cell uses seed+t, which
// is what pairs the cells on identical traces.
func SweepSeed(seed int64) SweepOption {
	return func(s *Sweep) { s.seed = seed }
}

// SweepWorkers bounds simulation parallelism across the whole grid
// (default 0 = GOMAXPROCS). Unlike per-scenario workers, the pool spans
// cells: a sweep of many small cells still saturates the machine.
func SweepWorkers(n int) SweepOption {
	return func(s *Sweep) { s.workers = n }
}

// SweepScale shrinks every cell's workload by a factor in (0,1]: task
// count and window scale together, preserving each cell's arrival
// intensity (and hence oversubscription level) while shortening trials.
func SweepScale(f float64) SweepOption {
	return func(s *Sweep) { s.scale = f }
}

// Each applies scenario options to every cell of the sweep — shared
// configuration that is not an axis (a fixed queue bound, an OnTrialDone
// hook). Axis values override Each where they touch the same knob.
// WithTrials, WithSeed and WithWorkers are sweep-wide (they define the
// pairing and the pool) and are rejected here — use SweepTrials,
// SweepSeed and SweepWorkers.
func Each(opts ...ScenarioOption) SweepOption {
	return func(s *Sweep) { s.each = append(s.each, opts...) }
}

// Baseline designates one axis value as the comparison baseline, matched
// case-insensitively against value labels and raw specs ("reactdrop"
// matches the Droppers value labeled "ReactDrop"). Every other cell is
// then compared against the cell at the same coordinates with that axis
// moved to the baseline value, and carries paired-difference statistics
// in CellResult.VsBaseline.
func Baseline(value string) SweepOption {
	return func(s *Sweep) { s.baseline = value }
}

// OnCellDone registers a streaming-progress hook invoked once per
// completed cell with the number of finished cells so far. Calls are
// serialized (done counts arrive in order) from worker goroutines, so
// the hook must not block. The cell's VsBaseline is not yet populated —
// paired differences need the baseline cell, which may still be running.
func OnCellDone(fn func(done, total int, cell *CellResult)) SweepOption {
	return func(s *Sweep) { s.onCell = fn }
}

// Sweep is a declarative grid of scenarios: the cross product of its
// axes, every cell sharing trace generation by construction so
// comparisons across cells are paired. Build it with NewSweep and execute
// with Run.
type Sweep struct {
	axes     []Axis
	trials   int
	seed     int64
	workers  int
	scale    float64
	each     []ScenarioOption
	baseline string
	onCell   func(done, total int, cell *CellResult)

	cells   []*sweepCell
	strides []int
	// baseAxis/baseVal locate the resolved Baseline value; -1 when unset.
	baseAxis, baseVal int

	traceMu sync.Mutex
	traces  map[sweepTraceKey]*workload.Trace
}

// sweepCell is one expanded grid point.
type sweepCell struct {
	coords []int // value index per axis
	sc     *Scenario
	base   int // index of this cell's baseline cell, or -1
}

type sweepTraceKey struct {
	profile string
	cfg     workload.Config
	seed    int64
}

// NewSweep expands a grid of axes into paired scenarios. Axes and
// sweep-level options mix freely in the argument list:
//
//	sw, err := taskdrop.NewSweep(
//	    taskdrop.Profiles("spec"),
//	    taskdrop.Mappers("PAM"),
//	    taskdrop.Droppers("heuristic", "reactdrop"),
//	    taskdrop.Tasks(20000, 30000, 40000),
//	    taskdrop.SweepTrials(30),
//	    taskdrop.Baseline("reactdrop"),
//	)
//
// Every cell is validated at construction (unknown specs, out-of-range
// values and ambiguous axes fail here, not mid-run). Cells sharing a
// (profile, workload, seed) combination receive the identical trace
// instance per trial, so cross-cell comparisons are paired by
// construction.
func NewSweep(items ...SweepItem) (*Sweep, error) {
	s := &Sweep{
		trials:   1,
		seed:     1,
		scale:    1,
		baseAxis: -1,
		baseVal:  -1,
		traces:   map[sweepTraceKey]*workload.Trace{},
	}
	for _, it := range items {
		if it == nil {
			return nil, fmt.Errorf("taskdrop: nil sweep item")
		}
		it.applySweep(s)
	}
	if len(s.axes) == 0 {
		return nil, fmt.Errorf("taskdrop: sweep has no axes")
	}
	if s.trials < 1 {
		return nil, fmt.Errorf("taskdrop: SweepTrials(%d), want >= 1", s.trials)
	}
	if s.workers < 0 {
		return nil, fmt.Errorf("taskdrop: SweepWorkers(%d), want >= 0", s.workers)
	}
	if err := workload.CheckScale(s.scale); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, ax := range s.axes {
		if ax.err != nil {
			return nil, ax.err
		}
		if ax.name == "" {
			return nil, fmt.Errorf("taskdrop: sweep axis with empty name")
		}
		if seen[ax.name] {
			return nil, fmt.Errorf("taskdrop: duplicate sweep axis %q", ax.name)
		}
		seen[ax.name] = true
		if len(ax.values) == 0 {
			return nil, fmt.Errorf("taskdrop: sweep axis %q has no values", ax.name)
		}
		labels := map[string]bool{}
		for _, v := range ax.values {
			key := strings.ToLower(v.label)
			if labels[key] {
				return nil, fmt.Errorf("taskdrop: axis %q has duplicate value label %q (relabel with As)", ax.name, v.label)
			}
			labels[key] = true
		}
	}
	if err := s.resolveBaseline(); err != nil {
		return nil, err
	}
	if err := s.expand(); err != nil {
		return nil, err
	}
	return s, nil
}

// resolveBaseline locates the Baseline value on the axes.
func (s *Sweep) resolveBaseline() error {
	if s.baseline == "" {
		return nil
	}
	for ai, ax := range s.axes {
		for vi, v := range ax.values {
			if !strings.EqualFold(v.label, s.baseline) && !strings.EqualFold(v.spec, s.baseline) {
				continue
			}
			if s.baseAxis >= 0 {
				return fmt.Errorf("taskdrop: baseline %q is ambiguous: matches axis %q and axis %q",
					s.baseline, s.axes[s.baseAxis].name, ax.name)
			}
			s.baseAxis, s.baseVal = ai, vi
		}
	}
	if s.baseAxis < 0 {
		return fmt.Errorf("taskdrop: baseline %q matches no axis value", s.baseline)
	}
	return nil
}

// expand materializes the cross product into validated scenarios.
func (s *Sweep) expand() error {
	n := 1
	s.strides = make([]int, len(s.axes))
	for i := len(s.axes) - 1; i >= 0; i-- {
		s.strides[i] = n
		n *= len(s.axes[i].values)
	}
	s.cells = make([]*sweepCell, 0, n)
	coords := make([]int, len(s.axes))
	for idx := 0; idx < n; idx++ {
		rem := idx
		for a := range s.axes {
			coords[a] = rem / s.strides[a]
			rem %= s.strides[a]
		}
		cell, err := s.buildCell(coords)
		if err != nil {
			return err
		}
		s.cells = append(s.cells, cell)
	}
	return nil
}

// buildCell constructs and validates the scenario at one grid point.
func (s *Sweep) buildCell(coords []int) (*sweepCell, error) {
	profile := "spec"
	opts := append([]ScenarioOption(nil), s.each...)
	for a, vi := range coords {
		v := s.axes[a].values[vi]
		if v.profile != "" {
			profile = v.profile
		}
		opts = append(opts, v.opts...)
	}
	if err := s.rejectSweepLevelOpts(opts, coords); err != nil {
		return nil, err
	}
	opts = append(opts, WithTrials(s.trials), WithSeed(s.seed), WithWorkers(s.workers))
	sc, err := NewScenario(profile, opts...)
	if err != nil {
		return nil, fmt.Errorf("taskdrop: sweep cell %s: %w", s.cellName(coords), err)
	}
	if s.scale != 1 {
		cfg := workload.Config{TotalTasks: sc.tasks, Window: sc.window, GammaSlack: sc.gamma}.Scaled(s.scale)
		sc.tasks, sc.window = cfg.TotalTasks, cfg.Window
	}
	sc.genTrace = s.cachedTrace
	cell := &sweepCell{coords: append([]int(nil), coords...), sc: sc, base: -1}
	if s.baseAxis >= 0 && coords[s.baseAxis] != s.baseVal {
		cell.base = s.cellIndex(coords, s.baseAxis, s.baseVal)
	}
	return cell, nil
}

// rejectSweepLevelOpts refuses cell options that the sweep owns: trials,
// seed and workers are grid-wide (they define the pairing and the pool),
// so WithTrials/WithSeed/WithWorkers inside Each or an axis value would
// otherwise be silently overridden.
func (s *Sweep) rejectSweepLevelOpts(opts []ScenarioOption, coords []int) error {
	const sentinelSeed = int64(-1) << 62
	probe := Scenario{trials: -1, seed: sentinelSeed, workers: -1}
	for _, opt := range opts {
		opt(&probe)
	}
	switch {
	case probe.trials != -1:
		return fmt.Errorf("taskdrop: sweep cell %s sets WithTrials; use SweepTrials", s.cellName(coords))
	case probe.seed != sentinelSeed:
		return fmt.Errorf("taskdrop: sweep cell %s sets WithSeed; use SweepSeed", s.cellName(coords))
	case probe.workers != -1:
		return fmt.Errorf("taskdrop: sweep cell %s sets WithWorkers; use SweepWorkers", s.cellName(coords))
	}
	return nil
}

// cellIndex computes the flat index of coords with one axis overridden.
func (s *Sweep) cellIndex(coords []int, axis, val int) int {
	idx := 0
	for a, c := range coords {
		if a == axis {
			c = val
		}
		idx += c * s.strides[a]
	}
	return idx
}

// cellName renders a cell's coordinates for error messages and labels:
// the value labels of every non-singleton axis (all axes when every axis
// is a singleton), joined with " / ".
func (s *Sweep) cellName(coords []int) string {
	var parts []string
	for a, vi := range coords {
		if len(s.axes[a].values) > 1 {
			parts = append(parts, s.axes[a].values[vi].label)
		}
	}
	if len(parts) == 0 {
		for a, vi := range coords {
			parts = append(parts, s.axes[a].values[vi].label)
		}
	}
	return strings.Join(parts, " / ")
}

// cachedTrace memoizes trace generation across cells: every cell with the
// same (profile, workload shape, seed) receives the one instance. Traces
// are read-only during simulation, so sharing across engines is safe.
func (s *Sweep) cachedTrace(profileSpec string, m *Matrix, cfg workload.Config, seed int64) *workload.Trace {
	key := sweepTraceKey{profile: strings.ToLower(strings.TrimSpace(profileSpec)), cfg: cfg, seed: seed}
	s.traceMu.Lock()
	tr, ok := s.traces[key]
	s.traceMu.Unlock()
	if ok {
		return tr
	}
	tr = workload.Generate(m, cfg, seed)
	s.traceMu.Lock()
	// Keep the first stored instance so racing cells still share one trace.
	if prior, ok := s.traces[key]; ok {
		tr = prior
	} else {
		s.traces[key] = tr
	}
	s.traceMu.Unlock()
	return tr
}

// Cells returns the number of grid points the sweep expands to.
func (s *Sweep) Cells() int { return len(s.cells) }

// Scenario returns the validated scenario at cell index i (in grid
// expansion order, first axis slowest), for introspection — e.g. fetching
// a cell's Trace to verify pairing.
func (s *Sweep) Scenario(i int) (*Scenario, error) {
	if i < 0 || i >= len(s.cells) {
		return nil, fmt.Errorf("taskdrop: cell %d out of range [0,%d)", i, len(s.cells))
	}
	return s.cells[i].sc, nil
}

// Coord is one coordinate of a cell: the axis name and the value label
// the cell takes on it.
type Coord struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// CellResult is the outcome of one grid point.
type CellResult struct {
	// Coords locates the cell, one entry per axis in declaration order.
	Coords []Coord `json:"coords"`
	// Label joins the non-singleton coordinate labels, e.g. "Heuristic / 30k".
	Label string `json:"label"`
	// Run carries the per-trial results and the cell's own mean ± 95% CI
	// aggregation.
	Run *RunResult `json:"run"`
	// Baseline marks the cells Baseline designated.
	Baseline bool `json:"baseline,omitempty"`
	// VsBaseline is the paired-difference aggregation cell − baseline over
	// per-trial differences on shared traces: its CI95 is the paired 95%
	// confidence interval, typically far tighter than combining the two
	// cells' independent CIs. Nil for baseline cells and baseline-less
	// sweeps.
	VsBaseline *Summary `json:"vs_baseline,omitempty"`
}

// Stat returns one of the cell's aggregated metrics.
func (c *CellResult) Stat(m Metric) (StatSummary, bool) {
	if c.Run == nil {
		return StatSummary{}, false
	}
	return c.Run.Summary.Stat(string(m))
}

// SweepResult is the outcome of Sweep.Run: every cell in grid order plus
// the paired-difference comparisons against the designated baseline.
type SweepResult struct {
	// Axes are the sweep's axis names, in declaration order.
	Axes []string `json:"axes"`
	// BaselineValue echoes the Baseline designation ("" when unset).
	BaselineValue string `json:"baseline_value,omitempty"`
	// Cells holds one entry per grid point, first axis slowest.
	Cells []CellResult `json:"cells"`

	axes    []Axis
	strides []int
}

// Run executes every cell × trial across one shared worker pool and
// blocks until all finish. When ctx is cancelled mid-run the in-flight
// simulations stop between events and (nil, ctx.Err()) is returned
// promptly. Results are deterministic for a fixed seed regardless of the
// worker count.
func (s *Sweep) Run(ctx context.Context) (*SweepResult, error) {
	// Build the matrices (one per distinct profile) outside the pool;
	// traces are generated lazily inside the workers, memoized per
	// (profile, workload, seed) so paired cells share one instance. The
	// cache only matters while the run is in flight — release it after so
	// a long-lived Sweep doesn't pin every generated trace.
	for _, c := range s.cells {
		c.sc.Matrix()
	}
	defer func() {
		s.traceMu.Lock()
		s.traces = map[sweepTraceKey]*workload.Trace{}
		s.traceMu.Unlock()
	}()
	perCell := make([][]*sim.Result, len(s.cells))
	for i := range perCell {
		perCell[i] = make([]*sim.Result, s.trials)
	}
	out := &SweepResult{
		BaselineValue: s.baseline,
		Cells:         make([]CellResult, len(s.cells)),
		axes:          s.axes,
		strides:       s.strides,
	}
	for _, ax := range s.axes {
		out.Axes = append(out.Axes, ax.name)
	}
	var (
		mu       sync.Mutex
		cellDone = make([]int, len(s.cells))
		// The progress hook gets its own lock so a slow hook (formatted
		// I/O) only serializes cell completions, never the per-trial
		// bookkeeping the whole pool contends on.
		hookMu sync.Mutex
		done   int
	)
	err := runner.ForEach(ctx, s.workers, len(s.cells)*s.trials, func(ctx context.Context, i int) error {
		c, t := i/s.trials, i%s.trials
		res, err := s.cells[c].sc.runTrial(ctx, t)
		if err != nil {
			return fmt.Errorf("%s (trial %d): %w", s.cellName(s.cells[c].coords), t, err)
		}
		mu.Lock()
		perCell[c][t] = res
		cellDone[c]++
		finished := cellDone[c] == s.trials
		mu.Unlock()
		if finished {
			out.Cells[c] = s.cellResult(c, perCell[c])
			hookMu.Lock()
			done++
			if s.onCell != nil {
				s.onCell(done, len(s.cells), &out.Cells[c])
			}
			hookMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Paired differences need both sides complete; fill them in after the
	// pool drains.
	for c := range s.cells {
		base := s.cells[c].base
		if base < 0 {
			continue
		}
		diff, err := runner.SummarizeDiff(perCell[c], perCell[base])
		if err != nil {
			return nil, err
		}
		out.Cells[c].VsBaseline = &diff
	}
	return out, nil
}

// cellResult assembles one cell's aggregation (without diffs).
func (s *Sweep) cellResult(c int, results []*sim.Result) CellResult {
	cell := s.cells[c]
	cr := CellResult{
		Label:    s.cellName(cell.coords),
		Run:      &RunResult{Trials: results, Summary: runner.Summarize(results)},
		Baseline: s.baseAxis >= 0 && cell.coords[s.baseAxis] == s.baseVal,
	}
	for a, vi := range cell.coords {
		cr.Coords = append(cr.Coords, Coord{Axis: s.axes[a].name, Value: s.axes[a].values[vi].label})
	}
	return cr
}

// Cell finds the first cell whose coordinate values include every given
// label (case-insensitive); ok is false when none matches.
func (r *SweepResult) Cell(values ...string) (*CellResult, bool) {
next:
	for i := range r.Cells {
		for _, want := range values {
			found := false
			for _, co := range r.Cells[i].Coords {
				if strings.EqualFold(co.Value, want) {
					found = true
					break
				}
			}
			if !found {
				continue next
			}
		}
		return &r.Cells[i], true
	}
	return nil, false
}

// Table renders the sweep flat: one row per cell with its coordinates,
// headline metrics, and — when a baseline is designated — the paired
// robustness difference with its paired 95% CI.
func (r *SweepResult) Table() *Table {
	t := &Table{ID: "sweep", Title: "sweep results (mean ± 95% CI over paired trials)"}
	t.Columns = append(t.Columns, r.Axes...)
	t.Columns = append(t.Columns, "robustness (%)", "norm cost", "utility (%)")
	withDiff := r.BaselineValue != ""
	if withDiff {
		t.Columns = append(t.Columns, "Δ robustness vs "+r.BaselineValue+" (pp, paired)")
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		row := make([]string, 0, len(t.Columns))
		for _, co := range c.Coords {
			row = append(row, co.Value)
		}
		row = append(row,
			c.Run.Summary.Robustness.String(),
			c.Run.Summary.NormCost.String(),
			c.Run.Summary.Utility.String(),
		)
		if withDiff {
			switch {
			case c.Baseline:
				row = append(row, "baseline")
			case c.VsBaseline != nil:
				row = append(row, fmt.Sprintf("%+.2f ± %.2f", c.VsBaseline.Robustness.Mean, c.VsBaseline.Robustness.CI95))
			default:
				row = append(row, "")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// CSV renders the flat Table as CSV.
func (r *SweepResult) CSV() string { return r.Table().CSV() }

// JSON serializes the full result — every cell's coordinates, per-trial
// results, aggregation and paired differences — as indented JSON.
func (r *SweepResult) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// MetricColumn is one fixed metric column of a Pivot without a column
// axis.
type MetricColumn struct {
	Header string
	Metric Metric
}

// Pivot lays a sweep out as a two-dimensional table: the Row axis values
// become rows and either the Col axis values become columns (each cell
// rendering Metric) or a fixed set of MetricColumns render several
// metrics of the same cells. Every axis not named Row or Col must be a
// singleton — a pivot is a view, not an aggregation.
type Pivot struct {
	// ID and Title name the rendered table.
	ID    string
	Title string
	// Row is the axis whose values become rows; RowHeader overrides the
	// first column's header (default: the axis name) and RowFmt formats
	// each row label (printf with one %s; default "%s").
	Row       string
	RowHeader string
	RowFmt    string
	// Col is the axis whose values become columns, rendered with ColFmt
	// (printf with one %s; default "%s"); each body cell shows Metric.
	Col    string
	ColFmt string
	Metric Metric
	// Columns replaces the Col layout with fixed metric columns.
	Columns []MetricColumn
	// Delta appends a mean-difference column (first Col value minus the
	// second; the Col axis must then have exactly two values) formatted
	// "%+.2f", headed DeltaHeader (default "Δ (pp)").
	Delta       bool
	DeltaHeader string
}

// Pivot renders the sweep as the requested two-dimensional table. It
// needs the grid geometry only Sweep.Run records: a SweepResult
// reconstructed from JSON can be inspected cell by cell but not pivoted.
func (r *SweepResult) Pivot(p Pivot) (*Table, error) {
	if len(r.axes) == 0 {
		return nil, fmt.Errorf("taskdrop: pivot needs a result produced by Sweep.Run (deserialized results carry no grid geometry)")
	}
	axisIdx := func(name string) int {
		for i, ax := range r.Axes {
			if strings.EqualFold(ax, name) {
				return i
			}
		}
		return -1
	}
	rowAx := axisIdx(p.Row)
	if rowAx < 0 {
		return nil, fmt.Errorf("taskdrop: pivot row axis %q not in sweep axes %v", p.Row, r.Axes)
	}
	colAx := -1
	if p.Col != "" {
		if colAx = axisIdx(p.Col); colAx < 0 {
			return nil, fmt.Errorf("taskdrop: pivot column axis %q not in sweep axes %v", p.Col, r.Axes)
		}
		if colAx == rowAx {
			return nil, fmt.Errorf("taskdrop: pivot Row and Col both name axis %q", p.Row)
		}
	} else if len(p.Columns) == 0 {
		return nil, fmt.Errorf("taskdrop: pivot needs a Col axis or metric Columns")
	}
	for a, ax := range r.axes {
		if a != rowAx && a != colAx && len(ax.values) != 1 {
			return nil, fmt.Errorf("taskdrop: pivot leaves axis %q (%d values) unplaced; pin it or pivot on it",
				ax.name, len(ax.values))
		}
	}
	cellAt := func(row, col int) *CellResult {
		idx := 0
		for a := range r.axes {
			switch a {
			case rowAx:
				idx += row * r.strides[a]
			case colAx:
				idx += col * r.strides[a]
			}
		}
		return &r.Cells[idx]
	}
	stat := func(c *CellResult, m Metric) (StatSummary, error) {
		st, ok := c.Stat(m)
		if !ok {
			return StatSummary{}, fmt.Errorf("taskdrop: pivot metric %q unknown", m)
		}
		return st, nil
	}

	rowFmt := p.RowFmt
	if rowFmt == "" {
		rowFmt = "%s"
	}
	header := p.RowHeader
	if header == "" {
		header = r.axes[rowAx].name
	}
	t := &Table{ID: p.ID, Title: p.Title, Columns: []string{header}}

	if colAx >= 0 {
		metric := p.Metric
		if metric == "" {
			metric = MetricRobustness
		}
		colFmt := p.ColFmt
		if colFmt == "" {
			colFmt = "%s"
		}
		colVals := r.axes[colAx].values
		if p.Delta && len(colVals) != 2 {
			return nil, fmt.Errorf("taskdrop: pivot Delta needs exactly 2 column values, axis %q has %d",
				p.Col, len(colVals))
		}
		for _, v := range colVals {
			t.Columns = append(t.Columns, fmt.Sprintf(colFmt, v.label))
		}
		if p.Delta {
			dh := p.DeltaHeader
			if dh == "" {
				dh = "Δ (pp)"
			}
			t.Columns = append(t.Columns, dh)
		}
		for ri, rv := range r.axes[rowAx].values {
			row := []string{fmt.Sprintf(rowFmt, rv.label)}
			means := make([]float64, len(colVals))
			for ci := range colVals {
				st, err := stat(cellAt(ri, ci), metric)
				if err != nil {
					return nil, err
				}
				means[ci] = st.Mean
				row = append(row, st.String())
			}
			if p.Delta {
				row = append(row, fmt.Sprintf("%+.2f", means[0]-means[1]))
			}
			t.Rows = append(t.Rows, row)
		}
		return t, nil
	}

	for _, mc := range p.Columns {
		t.Columns = append(t.Columns, mc.Header)
	}
	for ri, rv := range r.axes[rowAx].values {
		row := []string{fmt.Sprintf(rowFmt, rv.label)}
		for _, mc := range p.Columns {
			st, err := stat(cellAt(ri, -1), mc.Metric)
			if err != nil {
				return nil, err
			}
			row = append(row, st.String())
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
